// Package trace models block I/O traces: the record format, exact
// reuse-distance analysis (the paper's §3.1 metric), and a closed-loop
// replayer that drives any block device in virtual time.
package trace

import (
	"sort"

	"biza/internal/blockdev"
	"biza/internal/metrics"
	"biza/internal/sim"
)

// Op is one trace record.
type Op struct {
	Write  bool
	LBA    int64
	Blocks int
}

// Trace is an ordered stream of operations over a block address space.
type Trace struct {
	Name      string
	BlockSize int
	Ops       []Op
}

// Footprint reports the highest block touched plus one.
func (t *Trace) Footprint() int64 {
	var max int64
	for _, op := range t.Ops {
		if end := op.LBA + int64(op.Blocks); end > max {
			max = end
		}
	}
	return max
}

// Stats summarizes a trace (Table 6's characterization columns).
type Stats struct {
	Ops           int
	WriteRatio    float64 // fraction of operations that write
	AvgReadBytes  float64
	AvgWriteBytes float64
	WrittenBytes  uint64
	ReadBytes     uint64
}

// Characterize computes summary statistics.
func (t *Trace) Characterize() Stats {
	var s Stats
	var reads, writes int
	for _, op := range t.Ops {
		bytes := uint64(op.Blocks) * uint64(t.BlockSize)
		if op.Write {
			writes++
			s.WrittenBytes += bytes
		} else {
			reads++
			s.ReadBytes += bytes
		}
	}
	s.Ops = len(t.Ops)
	if s.Ops > 0 {
		s.WriteRatio = float64(writes) / float64(s.Ops)
	}
	if reads > 0 {
		s.AvgReadBytes = float64(s.ReadBytes) / float64(reads)
	}
	if writes > 0 {
		s.AvgWriteBytes = float64(s.WrittenBytes) / float64(writes)
	}
	return s
}

// WriteReuseDistances computes, for every write to a block that was
// written before, the bytes written between the two visits — the paper's
// reuse-distance definition (§3.1). Returns one sample per re-write.
func (t *Trace) WriteReuseDistances() []int64 {
	lastSeen := make(map[int64]uint64)
	var written uint64
	var out []int64
	bs := uint64(t.BlockSize)
	for _, op := range t.Ops {
		if !op.Write {
			continue
		}
		for i := 0; i < op.Blocks; i++ {
			blk := op.LBA + int64(i)
			if prev, ok := lastSeen[blk]; ok {
				out = append(out, int64(written-prev))
			}
			lastSeen[blk] = written
			written += bs
		}
	}
	return out
}

// ReuseCDF evaluates the reuse-distance CDF at the given byte thresholds
// (Fig. 4's curve).
func (t *Trace) ReuseCDF(thresholds []int64) []float64 {
	return metrics.CDF(t.WriteReuseDistances(), thresholds)
}

// FractionBeyond reports the fraction of reuse distances exceeding the
// threshold (§5.4 quotes 8.3% for casa and 90.2% for tencent at 56 MB).
func (t *Trace) FractionBeyond(threshold int64) float64 {
	ds := t.WriteReuseDistances()
	if len(ds) == 0 {
		return 0
	}
	n := 0
	for _, d := range ds {
		if d > threshold {
			n++
		}
	}
	return float64(n) / float64(len(ds))
}

// Result is a replay outcome.
type Result struct {
	Ops        uint64
	Bytes      uint64
	WriteBytes uint64
	Elapsed    sim.Time
	WriteLat   *metrics.Histogram
	ReadLat    *metrics.Histogram
	Errors     uint64
}

// Throughput reports overall bytes moved per second.
func (r Result) Throughput() metrics.Throughput {
	return metrics.Throughput{Bytes: r.Bytes, Elapsed: r.Elapsed}
}

// Replay drives the trace against dev with a closed loop of depth
// outstanding operations, in record order, and reports totals.
func Replay(eng *sim.Engine, dev blockdev.Device, t *Trace, depth int) Result {
	if depth < 1 {
		depth = 1
	}
	res := Result{WriteLat: metrics.NewHistogram(), ReadLat: metrics.NewHistogram()}
	next := 0
	capBlocks := dev.Blocks()
	start := eng.Now()
	var issue func()
	issue = func() {
		for next < len(t.Ops) {
			op := t.Ops[next]
			next++
			lba := op.LBA % capBlocks
			if lba+int64(op.Blocks) > capBlocks {
				lba = capBlocks - int64(op.Blocks)
				if lba < 0 {
					continue
				}
			}
			if op.Write {
				dev.Write(lba, op.Blocks, nil, func(r blockdev.WriteResult) {
					if r.Err != nil {
						res.Errors++
					} else {
						res.Ops++
						res.Bytes += uint64(op.Blocks) * uint64(t.BlockSize)
						res.WriteBytes += uint64(op.Blocks) * uint64(t.BlockSize)
						res.WriteLat.Record(r.Latency)
					}
					issue()
				})
			} else {
				dev.Read(lba, op.Blocks, func(r blockdev.ReadResult) {
					if r.Err != nil {
						res.Errors++
					} else {
						res.Ops++
						res.Bytes += uint64(op.Blocks) * uint64(t.BlockSize)
						res.ReadLat.Record(r.Latency)
					}
					issue()
				})
			}
			return
		}
	}
	for i := 0; i < depth; i++ {
		issue()
	}
	eng.Run()
	res.Elapsed = eng.Now() - start
	return res
}

// SortThresholds returns sorted copies for CDF plotting helpers.
func SortThresholds(ts []int64) []int64 {
	out := append([]int64(nil), ts...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
