package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary trace format: a fixed header followed by fixed-width records.
//
//	magic "BZTR" | version u16 | blockSize u32 | nameLen u16 | name |
//	count u64 | records: flags u8 (bit0 = write) | lba i64 | blocks u32
const traceMagic = "BZTR"

// WriteTo serializes the trace.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(v any) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	if _, err := bw.WriteString(traceMagic); err != nil {
		return n, err
	}
	n += 4
	if err := write(uint16(1)); err != nil {
		return n, err
	}
	if err := write(uint32(t.BlockSize)); err != nil {
		return n, err
	}
	name := []byte(t.Name)
	if err := write(uint16(len(name))); err != nil {
		return n, err
	}
	if _, err := bw.Write(name); err != nil {
		return n, err
	}
	n += int64(len(name))
	if err := write(uint64(len(t.Ops))); err != nil {
		return n, err
	}
	for _, op := range t.Ops {
		var flags uint8
		if op.Write {
			flags |= 1
		}
		if err := write(flags); err != nil {
			return n, err
		}
		if err := write(op.LBA); err != nil {
			return n, err
		}
		if err := write(uint32(op.Blocks)); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadFrom deserializes a trace written by WriteTo.
func ReadFrom(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, err
	}
	if string(magic) != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	var version uint16
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version != 1 {
		return nil, fmt.Errorf("trace: unsupported version %d", version)
	}
	var bs uint32
	if err := binary.Read(br, binary.LittleEndian, &bs); err != nil {
		return nil, err
	}
	var nameLen uint16
	if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
		return nil, err
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	var count uint64
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, err
	}
	const maxOps = 1 << 28
	if count > maxOps {
		return nil, fmt.Errorf("trace: absurd op count %d", count)
	}
	t := &Trace{Name: string(name), BlockSize: int(bs), Ops: make([]Op, 0, count)}
	for i := uint64(0); i < count; i++ {
		var flags uint8
		var lba int64
		var blocks uint32
		if err := binary.Read(br, binary.LittleEndian, &flags); err != nil {
			return nil, err
		}
		if err := binary.Read(br, binary.LittleEndian, &lba); err != nil {
			return nil, err
		}
		if err := binary.Read(br, binary.LittleEndian, &blocks); err != nil {
			return nil, err
		}
		t.Ops = append(t.Ops, Op{Write: flags&1 != 0, LBA: lba, Blocks: int(blocks)})
	}
	return t, nil
}
