package ftl

import (
	"bytes"
	"errors"
	"testing"

	"biza/internal/blockdev"
	"biza/internal/sim"
)

func newDev(t *testing.T) (*sim.Engine, *Device) {
	t.Helper()
	eng := sim.NewEngine()
	d, err := New(eng, TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	return eng, d
}

func wsync(eng *sim.Engine, d *Device, lba int64, n int, data []byte) blockdev.WriteResult {
	var res blockdev.WriteResult
	ok := false
	d.Write(lba, n, data, func(r blockdev.WriteResult) { res = r; ok = true })
	eng.Run()
	if !ok {
		panic("write did not complete")
	}
	return res
}

func rsync(eng *sim.Engine, d *Device, lba int64, n int) blockdev.ReadResult {
	var res blockdev.ReadResult
	ok := false
	d.Read(lba, n, func(r blockdev.ReadResult) { res = r; ok = true })
	eng.Run()
	if !ok {
		panic("read did not complete")
	}
	return res
}

func pattern(seed byte, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed ^ byte(i*3)
	}
	return b
}

func TestConfigValidation(t *testing.T) {
	good := TestConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.GCHighWater = bad.GCLowWater
	if bad.Validate() == nil {
		t.Fatal("accepted bad watermarks")
	}
	bad = good
	bad.OverProvision = 0.95
	if bad.Validate() == nil {
		t.Fatal("accepted absurd over-provisioning")
	}
}

func TestCapacityReflectsOverProvision(t *testing.T) {
	_, d := newDev(t)
	cfg := d.Config()
	raw := int64(cfg.FlashBlocks) * int64(cfg.PagesPerBlock)
	want := int64(float64(raw) * (1 - cfg.OverProvision))
	if d.Blocks() != want {
		t.Fatalf("logical blocks = %d, want %d", d.Blocks(), want)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	eng, d := newDev(t)
	p := pattern(5, 3*4096)
	if r := wsync(eng, d, 10, 3, p); r.Err != nil {
		t.Fatal(r.Err)
	}
	r := rsync(eng, d, 10, 3)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if !bytes.Equal(r.Data, p) {
		t.Fatal("round trip mismatch")
	}
}

func TestOverwriteReturnsLatest(t *testing.T) {
	eng, d := newDev(t)
	wsync(eng, d, 0, 1, pattern(1, 4096))
	wsync(eng, d, 0, 1, pattern(2, 4096))
	r := rsync(eng, d, 0, 1)
	if !bytes.Equal(r.Data, pattern(2, 4096)) {
		t.Fatal("overwrite not visible")
	}
}

func TestOutOfRangeRejected(t *testing.T) {
	eng, d := newDev(t)
	if r := wsync(eng, d, d.Blocks(), 1, nil); !errors.Is(r.Err, blockdev.ErrOutOfRange) {
		t.Fatalf("oob write err = %v", r.Err)
	}
	if r := rsync(eng, d, -1, 1); !errors.Is(r.Err, blockdev.ErrOutOfRange) {
		t.Fatalf("oob read err = %v", r.Err)
	}
}

func TestOverwritesTriggerGC(t *testing.T) {
	eng, d := newDev(t)
	// Hammer a working set larger than free-block slack so GC must run.
	span := d.Blocks() / 2
	for round := 0; round < 6; round++ {
		for lba := int64(0); lba < span; lba += 8 {
			wsync(eng, d, lba, 8, nil)
		}
	}
	eng.Run()
	if d.GCEvents() == 0 {
		t.Fatal("no GC despite sustained overwrites")
	}
	if d.Erases() == 0 {
		t.Fatal("GC ran but erased nothing")
	}
	if d.FreeBlocks() == 0 {
		t.Fatal("device ran out of free blocks")
	}
}

func TestWriteAmpGrowsUnderRandomOverwrite(t *testing.T) {
	eng, d := newDev(t)
	rng := sim.NewRNG(3)
	span := d.Blocks() * 3 / 4
	for i := 0; i < 4000; i++ {
		wsync(eng, d, rng.Int63n(span), 1, nil)
	}
	eng.Run()
	wa := d.WriteAmp()
	if wa.Factor() <= 1.0 {
		t.Fatalf("WA = %.2f under random overwrite, want > 1", wa.Factor())
	}
	if wa.GCMigratedBytes == 0 {
		t.Fatal("no migration accounted")
	}
}

func TestSequentialOverwriteLowWA(t *testing.T) {
	// Whole-device sequential rewrites invalidate entire blocks, so greedy
	// GC should migrate almost nothing: WA stays near 1.
	eng, d := newDev(t)
	span := d.Blocks() * 3 / 4
	for round := 0; round < 8; round++ {
		for lba := int64(0); lba+8 <= span; lba += 8 {
			wsync(eng, d, lba, 8, nil)
		}
	}
	eng.Run()
	wa := d.WriteAmp()
	if wa.Factor() > 1.3 {
		t.Fatalf("sequential WA = %.2f, want near 1", wa.Factor())
	}
}

func TestTrimInvalidates(t *testing.T) {
	eng, d := newDev(t)
	wsync(eng, d, 0, 8, pattern(9, 8*4096))
	d.Trim(0, 8)
	r := rsync(eng, d, 0, 1)
	for _, b := range r.Data {
		if b != 0 {
			t.Fatal("trimmed data still readable")
		}
	}
	// Trimmed pages must not be migrated: fill the device and check GC
	// migrates little.
	span := d.Blocks() / 2
	for round := 0; round < 3; round++ {
		for lba := int64(0); lba < span; lba += 8 {
			wsync(eng, d, lba, 8, nil)
			d.Trim(lba, 8)
		}
	}
	eng.Run()
	wa := d.WriteAmp()
	if wa.GCMigratedBytes > wa.UserBytes/4 {
		t.Fatalf("GC migrated %d bytes of trimmed data", wa.GCMigratedBytes)
	}
}

func TestGCLatencySpike(t *testing.T) {
	// Depth-1 write latency while GC is active should spike well above the
	// quiescent latency — the §2.3 tail-latency observation.
	quiet := func() int64 {
		eng, d := newDev(t)
		r := wsync(eng, d, 0, 1, nil)
		return r.Latency
	}()
	eng, d := newDev(t)
	// Dirty the device so GC is running.
	rng := sim.NewRNG(7)
	span := d.Blocks() * 3 / 4
	for i := 0; i < 3000; i++ {
		d.Write(rng.Int63n(span), 1, nil, nil)
	}
	var worst int64
	for i := 0; i < 50; i++ {
		r := wsync(eng, d, rng.Int63n(span), 1, nil)
		if r.Latency > worst {
			worst = r.Latency
		}
	}
	eng.Run()
	if worst < quiet*3 {
		t.Fatalf("no GC latency spike: worst %dns vs quiet %dns", worst, quiet)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (uint64, uint64) {
		eng, d := newDev(t)
		rng := sim.NewRNG(11)
		for i := 0; i < 2000; i++ {
			wsync(eng, d, rng.Int63n(d.Blocks()/2), 1, nil)
		}
		eng.Run()
		wa := d.WriteAmp()
		return wa.FlashDataBytes, d.Erases()
	}
	p1, e1 := run()
	p2, e2 := run()
	if p1 != p2 || e1 != e2 {
		t.Fatalf("replay diverged: %d/%d vs %d/%d", p1, e1, p2, e2)
	}
}
