// Package ftl simulates a conventional block-interface SSD: a page-mapped
// flash translation layer with greedy garbage collection over the same
// channel/die resource model as the ZNS simulator. It is the substrate for
// the paper's mdraid+ConvSSD baseline (WD SN640), whose behaviour —
// device-hidden GC producing write amplification and latency spikes — is
// exactly what BIZA's host-controlled design eliminates.
package ftl

import (
	"fmt"

	"biza/internal/blockdev"
	"biza/internal/metrics"
	"biza/internal/obs"
	"biza/internal/sim"
)

// Config describes the simulated conventional SSD.
type Config struct {
	Name string

	BlockSize      int     // logical block / flash page size in bytes
	PagesPerBlock  int     // flash pages per erase block
	FlashBlocks    int     // total erase blocks
	OverProvision  float64 // fraction of raw capacity reserved (not host-visible)
	NumChannels    int
	DiesPerChannel int

	ChannelWriteBW int64
	ChannelReadBW  int64
	DieWriteBW     int64
	DieReadBW      int64
	DeviceWriteBW  int64
	DeviceReadBW   int64

	CmdOverhead     sim.Time
	BufWriteLatency sim.Time
	DieReadLatency  sim.Time
	EraseLatency    sim.Time

	// CacheBlocks is the device DRAM write-cache size in pages; writes are
	// acknowledged from cache and drain to flash in the background.
	CacheBlocks int64

	// GC watermarks in free erase blocks.
	GCLowWater  int
	GCHighWater int

	Seed      uint64
	StoreData bool
}

// Validate reports a descriptive error for an unusable configuration.
func (c *Config) Validate() error {
	switch {
	case c.BlockSize <= 0 || c.PagesPerBlock <= 0 || c.FlashBlocks <= 0:
		return fmt.Errorf("ftl: bad geometry %+v", *c)
	case c.OverProvision < 0 || c.OverProvision >= 0.9:
		return fmt.Errorf("ftl: over-provision %v", c.OverProvision)
	case c.NumChannels <= 0 || c.DiesPerChannel <= 0:
		return fmt.Errorf("ftl: bad parallelism")
	case c.ChannelWriteBW <= 0 || c.ChannelReadBW <= 0 || c.DieWriteBW <= 0 ||
		c.DieReadBW <= 0 || c.DeviceWriteBW <= 0 || c.DeviceReadBW <= 0:
		return fmt.Errorf("ftl: non-positive bandwidth")
	case c.GCLowWater < 1 || c.GCHighWater <= c.GCLowWater:
		return fmt.Errorf("ftl: bad GC watermarks %d/%d", c.GCLowWater, c.GCHighWater)
	}
	return nil
}

// SN640 returns the Western Digital Ultrastar DC SN640 preset (Table 5):
// 2250/3331 MB/s write/read — a few percent above the ZN540, per the paper.
// totalBlocks scales capacity; use small values in tests.
func SN640(flashBlocks int) Config {
	return Config{
		Name:            "WD SN640",
		BlockSize:       4096,
		PagesPerBlock:   256, // 1 MiB erase blocks
		FlashBlocks:     flashBlocks,
		OverProvision:   0.12,
		NumChannels:     8,
		DiesPerChannel:  4,
		ChannelWriteBW:  1130e6,
		ChannelReadBW:   1666e6,
		DieWriteBW:      565e6,
		DieReadBW:       900e6,
		DeviceWriteBW:   2250e6,
		DeviceReadBW:    3331e6,
		CmdOverhead:     3 * sim.Microsecond,
		BufWriteLatency: 8 * sim.Microsecond,
		DieReadLatency:  25 * sim.Microsecond,
		EraseLatency:    2 * sim.Millisecond,
		CacheBlocks:     4096, // 16 MiB device cache
		GCLowWater:      flashBlocks / 32,
		GCHighWater:     flashBlocks / 16,
	}
}

// TestConfig returns a small fast geometry for unit tests.
func TestConfig() Config {
	return Config{
		Name:            "ftl-test",
		BlockSize:       4096,
		PagesPerBlock:   16,
		FlashBlocks:     64,
		OverProvision:   0.25,
		NumChannels:     4,
		DiesPerChannel:  2,
		ChannelWriteBW:  1000e6,
		ChannelReadBW:   1600e6,
		DieWriteBW:      500e6,
		DieReadBW:       900e6,
		DeviceWriteBW:   2000e6,
		DeviceReadBW:    3200e6,
		CmdOverhead:     3 * sim.Microsecond,
		BufWriteLatency: 8 * sim.Microsecond,
		DieReadLatency:  25 * sim.Microsecond,
		EraseLatency:    500 * sim.Microsecond,
		CacheBlocks:     32,
		GCLowWater:      4,
		GCHighWater:     8,
		StoreData:       true,
	}
}

const invalidPPN = int64(-1)

type flashBlock struct {
	channel  int
	nextPage int // allocation cursor
	valid    int // count of valid pages
	erases   uint64
	full     bool
	free     bool
}

type channelRes struct {
	writeBus *sim.Resource
	readBus  *sim.Resource
	dies     *sim.Resource
}

// Device is the simulated conventional SSD. It implements blockdev.Device.
type Device struct {
	cfg Config
	eng *sim.Engine

	l2p  []int64 // logical page -> physical page (flat), invalidPPN if unmapped
	p2l  []int64 // physical page -> logical page, invalidPPN if invalid/free
	data map[int64][]byte

	blocks   []flashBlock
	freeList []int
	active   []int // per-channel active block for user writes
	gcBlk    int   // single active block for GC migration
	chans    []*channelRes

	controller *sim.Resource
	writeLink  *sim.Resource
	readLink   *sim.Resource

	cacheCredit int64
	waiters     []waiter
	stalled     []func() // allocation parked below the critical watermark

	logicalPages int64

	gcRunning bool
	gcWaiting bool // collector parked until an in-flight erase frees a block
	rng       *sim.RNG

	// Accounting.
	userWritten uint64
	programmed  uint64
	gcMigrated  uint64
	erases      uint64
	gcEvents    uint64

	tr    *obs.Trace
	trDev int
}

// SetTracer attaches an observability trace; dev labels this device in the
// trace. Passing nil detaches.
func (d *Device) SetTracer(tr *obs.Trace, dev int) {
	d.tr = tr
	d.trDev = dev
}

// ChannelWriteBusy reports cumulative busy time of channel ch's program bus.
func (d *Device) ChannelWriteBusy(ch int) sim.Time {
	if ch < 0 || ch >= len(d.chans) {
		return 0
	}
	return d.chans[ch].writeBus.BusyTime()
}

// ChannelReadBusy reports cumulative busy time of channel ch's read bus.
func (d *Device) ChannelReadBusy(ch int) sim.Time {
	if ch < 0 || ch >= len(d.chans) {
		return 0
	}
	return d.chans[ch].readBus.BusyTime()
}

type waiter struct {
	need int64
	run  func()
}

// New creates a device with all blocks free.
func New(eng *sim.Engine, cfg Config) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	totalPages := int64(cfg.FlashBlocks) * int64(cfg.PagesPerBlock)
	logical := int64(float64(totalPages) * (1 - cfg.OverProvision))
	d := &Device{
		cfg:          cfg,
		eng:          eng,
		l2p:          make([]int64, logical),
		p2l:          make([]int64, totalPages),
		blocks:       make([]flashBlock, cfg.FlashBlocks),
		active:       make([]int, cfg.NumChannels),
		controller:   sim.NewResource(eng, 1),
		writeLink:    sim.NewResource(eng, 1),
		readLink:     sim.NewResource(eng, 1),
		cacheCredit:  cfg.CacheBlocks,
		logicalPages: logical,
		rng:          sim.NewRNG(cfg.Seed ^ 0xf71),
	}
	if cfg.StoreData {
		d.data = make(map[int64][]byte)
	}
	for i := range d.l2p {
		d.l2p[i] = invalidPPN
	}
	for i := range d.p2l {
		d.p2l[i] = invalidPPN
	}
	d.chans = make([]*channelRes, cfg.NumChannels)
	for i := range d.chans {
		d.chans[i] = &channelRes{
			writeBus: sim.NewResource(eng, 1),
			readBus:  sim.NewResource(eng, 1),
			dies:     sim.NewResource(eng, cfg.DiesPerChannel),
		}
	}
	for i := range d.blocks {
		d.blocks[i] = flashBlock{channel: i % cfg.NumChannels, free: true}
		d.freeList = append(d.freeList, i)
	}
	for ch := range d.active {
		d.active[ch] = d.takeFreeBlock(ch)
	}
	d.gcBlk = d.takeFreeBlock(0)
	return d, nil
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// BlockSize implements blockdev.Device.
func (d *Device) BlockSize() int { return d.cfg.BlockSize }

// StoresData implements blockdev.DataStorer.
func (d *Device) StoresData() bool { return d.cfg.StoreData }

// Blocks implements blockdev.Device.
func (d *Device) Blocks() int64 { return d.logicalPages }

// WriteAmp implements blockdev.WriteAmper: device-level write amplification
// (user pages vs pages programmed, including GC migration).
func (d *Device) WriteAmp() metrics.WriteAmp {
	return metrics.WriteAmp{
		UserBytes:       d.userWritten,
		FlashDataBytes:  d.programmed,
		GCMigratedBytes: d.gcMigrated,
	}
}

// GCEvents reports how many victim collections have run.
func (d *Device) GCEvents() uint64 { return d.gcEvents }

// Erases reports total erase-block erases.
func (d *Device) Erases() uint64 { return d.erases }

// FreeBlocks reports the current free erase-block count.
func (d *Device) FreeBlocks() int { return len(d.freeList) }

// takeFreeBlock pops a free block, preferring blocks on channel ch.
func (d *Device) takeFreeBlock(ch int) int {
	for i, b := range d.freeList {
		if d.blocks[b].channel == ch {
			d.freeList = append(d.freeList[:i], d.freeList[i+1:]...)
			d.blocks[b].free = false
			return b
		}
	}
	if len(d.freeList) == 0 {
		panic("ftl: out of free blocks — GC watermark misconfigured")
	}
	b := d.freeList[0]
	d.freeList = d.freeList[1:]
	d.blocks[b].free = false
	return b
}

// allocPage assigns the next physical page for a write. User writes rotate
// channels by logical page so sequential streams stripe across channels;
// GC migration fills one dedicated block at a time (concentrating its
// interference on one channel, as a real block-granular collector does).
func (d *Device) allocPage(lpn int64, gc bool) (ppn int64, ch int) {
	var blk int
	if gc {
		fb := &d.blocks[d.gcBlk]
		if fb.nextPage >= d.cfg.PagesPerBlock {
			fb.full = true
			d.gcBlk = d.takeFreeBlock(d.rng.Intn(d.cfg.NumChannels))
		}
		blk = d.gcBlk
	} else {
		ch = int(lpn) % d.cfg.NumChannels
		if ch < 0 {
			ch = -ch
		}
		blk = d.active[ch]
		fb := &d.blocks[blk]
		if fb.nextPage >= d.cfg.PagesPerBlock {
			fb.full = true
			blk = d.takeFreeBlock(ch)
			d.active[ch] = blk
		}
	}
	fb := &d.blocks[blk]
	ppn = int64(blk)*int64(d.cfg.PagesPerBlock) + int64(fb.nextPage)
	fb.nextPage++
	return ppn, fb.channel
}

// mapPage installs lpn -> ppn, invalidating any previous mapping.
func (d *Device) mapPage(lpn, ppn int64) {
	if old := d.l2p[lpn]; old != invalidPPN {
		d.p2l[old] = invalidPPN
		d.blocks[old/int64(d.cfg.PagesPerBlock)].valid--
	}
	d.l2p[lpn] = ppn
	d.p2l[ppn] = lpn
	d.blocks[ppn/int64(d.cfg.PagesPerBlock)].valid++
}

// Write implements blockdev.Device: cache-acknowledged page-mapped writes
// with background drain and GC.
func (d *Device) Write(lba int64, nblocks int, data []byte, done func(blockdev.WriteResult)) {
	start := d.eng.Now()
	fail := func(err error) {
		if done != nil {
			d.eng.After(d.cfg.CmdOverhead, func() {
				done(blockdev.WriteResult{Err: err, Latency: d.eng.Now() - start})
			})
		}
	}
	n := int64(nblocks)
	if nblocks <= 0 || lba < 0 || lba+n > d.logicalPages {
		fail(blockdev.ErrOutOfRange)
		return
	}
	if data != nil && int64(len(data)) != n*int64(d.cfg.BlockSize) {
		fail(blockdev.ErrBadArgument)
		return
	}
	size := n * int64(d.cfg.BlockSize)
	d.userWritten += uint64(size)

	var span obs.SpanID
	if d.tr != nil {
		span = d.tr.SpanBegin(int64(start), obs.LayerFTL, obs.OpWrite, d.trDev, -1, lba, n)
	}

	// Page allocation happens only once cache credit is granted: the cache
	// is the device's admission control, which bounds how far allocation
	// can run ahead of GC and keeps free-block accounting safe.
	bs := int64(d.cfg.BlockSize)
	d.controller.Submit(d.cfg.CmdOverhead, func(_, _ sim.Time) {
		d.acquireCache(n, func() {
			d.allocWhenSafe(func() {
				for i := int64(0); i < n; i++ {
					lpn := lba + i
					ppn, ch := d.allocPage(lpn, false)
					d.mapPage(lpn, ppn)
					if d.data != nil {
						if data != nil {
							d.data[lpn] = append([]byte(nil), data[i*bs:(i+1)*bs]...)
						} else {
							delete(d.data, lpn)
						}
					}
					d.programPage(ppn, ch, false)
				}
				d.maybeStartGC()
				d.writeLink.Submit(size*sim.Second/d.cfg.DeviceWriteBW, func(s, e sim.Time) {
					d.tr.Mark(span, int64(s), int64(e), obs.LayerFTL, obs.PhaseXfer, d.trDev, -1, -1)
					bufStart := d.eng.Now()
					d.eng.After(d.cfg.BufWriteLatency, func() {
						d.tr.Mark(span, int64(bufStart), int64(d.eng.Now()), obs.LayerFTL, obs.PhaseBuffer, d.trDev, -1, -1)
						d.tr.SpanEnd(span, int64(d.eng.Now()), false)
						if done != nil {
							done(blockdev.WriteResult{Latency: d.eng.Now() - start})
						}
					})
				})
			})
		})
	})
}

// programPage schedules the flash program of one page on channel ch and
// releases one cache credit when it completes.
func (d *Device) programPage(ppn int64, ch int, gc bool) {
	size := int64(d.cfg.BlockSize)
	cr := d.chans[ch]
	cr.writeBus.Submit(size*sim.Second/d.cfg.ChannelWriteBW, func(_, _ sim.Time) {
		cr.dies.Submit(size*sim.Second/d.cfg.DieWriteBW, func(_, _ sim.Time) {
			d.programmed += uint64(size)
			if gc {
				d.gcMigrated += uint64(size)
			} else {
				d.releaseCache(1)
			}
		})
	})
}

// criticalWater is the free-block floor below which user allocation stalls
// (the "write cliff" every flash device exhibits): GC must be guaranteed
// headroom for its own migration blocks.
func (d *Device) criticalWater() int {
	w := d.cfg.GCLowWater / 2
	if w < 2 {
		w = 2
	}
	return w
}

// allocWhenSafe runs fn immediately when free blocks are above the critical
// watermark, or parks it until GC frees space. Parked work resumes in FIFO
// order, and only stalls while GC can actually make progress.
func (d *Device) allocWhenSafe(fn func()) {
	if len(d.freeList) > d.criticalWater() || d.pickVictim() < 0 {
		fn()
		return
	}
	d.stalled = append(d.stalled, fn)
	d.maybeStartGC()
}

func (d *Device) releaseStalled() {
	for len(d.stalled) > 0 && (len(d.freeList) > d.criticalWater() || d.pickVictim() < 0) {
		fn := d.stalled[0]
		d.stalled = d.stalled[1:]
		fn()
	}
}

func (d *Device) acquireCache(need int64, fn func()) {
	// Requests larger than the cache admit at full-cache granularity (the
	// real device streams them through); otherwise they could never enter.
	if need > d.cfg.CacheBlocks {
		need = d.cfg.CacheBlocks
	}
	if len(d.waiters) == 0 && d.cacheCredit >= need {
		d.cacheCredit -= need
		fn()
		return
	}
	d.waiters = append(d.waiters, waiter{need: need, run: fn})
}

func (d *Device) releaseCache(n int64) {
	d.cacheCredit += n
	for len(d.waiters) > 0 {
		w := &d.waiters[0]
		if d.cacheCredit < w.need {
			return
		}
		d.cacheCredit -= w.need
		run := w.run
		d.waiters = d.waiters[1:]
		run()
	}
}

// Read implements blockdev.Device.
func (d *Device) Read(lba int64, nblocks int, done func(blockdev.ReadResult)) {
	start := d.eng.Now()
	fail := func(err error) {
		if done != nil {
			d.eng.After(d.cfg.CmdOverhead, func() {
				done(blockdev.ReadResult{Err: err, Latency: d.eng.Now() - start})
			})
		}
	}
	n := int64(nblocks)
	if nblocks <= 0 || lba < 0 || lba+n > d.logicalPages {
		fail(blockdev.ErrOutOfRange)
		return
	}
	size := n * int64(d.cfg.BlockSize)
	// Route the read through the channel of the first mapped page (reads of
	// a multi-page span touch several channels; one-channel routing is a
	// conservative simplification).
	ch := int(lba) % d.cfg.NumChannels
	if ppn := d.l2p[lba]; ppn != invalidPPN {
		ch = d.blocks[ppn/int64(d.cfg.PagesPerBlock)].channel
	}
	finish := func() {
		if done == nil {
			return
		}
		var data []byte
		if d.data != nil {
			data = make([]byte, size)
			bs := int64(d.cfg.BlockSize)
			for i := int64(0); i < n; i++ {
				if src, ok := d.data[lba+i]; ok {
					copy(data[i*bs:(i+1)*bs], src)
				}
			}
		}
		done(blockdev.ReadResult{Data: data, Latency: d.eng.Now() - start})
	}
	var span obs.SpanID
	if d.tr != nil {
		span = d.tr.SpanBegin(int64(start), obs.LayerFTL, obs.OpRead, d.trDev, -1, lba, n)
		innerFinish := finish
		finish = func() {
			d.tr.SpanEnd(span, int64(d.eng.Now()), false)
			innerFinish()
		}
	}
	cr := d.chans[ch]
	d.controller.Submit(d.cfg.CmdOverhead, func(_, _ sim.Time) {
		cr.readBus.Submit(size*sim.Second/d.cfg.ChannelReadBW, func(s, e sim.Time) {
			d.tr.Mark(span, int64(s), int64(e), obs.LayerFTL, obs.PhaseBus, d.trDev, -1, ch)
			cr.dies.Submit(d.cfg.DieReadLatency+size*sim.Second/d.cfg.DieReadBW, func(s, e sim.Time) {
				d.tr.Mark(span, int64(s), int64(e), obs.LayerFTL, obs.PhaseDie, d.trDev, -1, ch)
				d.readLink.Submit(size*sim.Second/d.cfg.DeviceReadBW, func(s, e sim.Time) {
					d.tr.Mark(span, int64(s), int64(e), obs.LayerFTL, obs.PhaseXfer, d.trDev, -1, -1)
					finish()
				})
			})
		})
	})
}

// Trim implements blockdev.Device: unmaps the range without flash traffic.
func (d *Device) Trim(lba int64, nblocks int) {
	for i := int64(0); i < int64(nblocks); i++ {
		lpn := lba + i
		if lpn < 0 || lpn >= d.logicalPages {
			continue
		}
		if old := d.l2p[lpn]; old != invalidPPN {
			d.p2l[old] = invalidPPN
			d.blocks[old/int64(d.cfg.PagesPerBlock)].valid--
			d.l2p[lpn] = invalidPPN
		}
		if d.data != nil {
			delete(d.data, lpn)
		}
	}
}

// maybeStartGC launches the background collector when free blocks drop
// below the low watermark.
func (d *Device) maybeStartGC() {
	if d.gcRunning || len(d.freeList) >= d.cfg.GCLowWater {
		return
	}
	d.gcRunning = true
	d.eng.After(0, d.gcStep)
}

// gcStep collects one victim block: reads its valid pages, programs them to
// GC-active blocks (interfering with user I/O on the shared channels —
// the device-hidden latency spikes of §2.3), then erases the victim.
func (d *Device) gcStep() {
	if len(d.freeList) >= d.cfg.GCHighWater {
		d.gcRunning = false
		return
	}
	victim := d.pickVictim()
	if victim < 0 {
		d.gcRunning = false
		return
	}
	// Migration may need a fresh GC block mid-victim; hold off until an
	// in-flight erase restores stock rather than overdrawing the free list.
	if d.blocks[victim].valid > 0 && len(d.freeList) < 2 {
		d.gcWaiting = true
		return
	}
	d.gcEvents++
	if d.tr != nil {
		d.tr.Event(int64(d.eng.Now()), obs.LayerFTL, obs.EvGCVictim, d.trDev, victim,
			int64(d.blocks[victim].valid), int64(len(d.freeList)), 0)
	}
	fb := &d.blocks[victim]
	fb.full = false // withdraw from victim candidacy while collecting
	base := int64(victim) * int64(d.cfg.PagesPerBlock)
	var migrate []int64
	for p := int64(0); p < int64(d.cfg.PagesPerBlock); p++ {
		if d.p2l[base+p] != invalidPPN {
			migrate = append(migrate, base+p)
		}
	}
	size := int64(d.cfg.BlockSize)
	remaining := len(migrate)
	finishVictim := func() {
		// Erase occupies the victim channel's dies; the next victim is
		// collected concurrently so erases on different channels overlap.
		cr := d.chans[fb.channel]
		left := d.cfg.DiesPerChannel
		for i := 0; i < d.cfg.DiesPerChannel; i++ {
			cr.dies.Submit(d.cfg.EraseLatency, func(s, e sim.Time) {
				d.tr.Segment(int64(s), int64(e), obs.LayerFTL, obs.SegErase, d.trDev, victim, fb.channel, 0)
				left--
				if left > 0 {
					return
				}
				fb.free = true
				fb.nextPage = 0
				fb.erases++
				d.erases++
				d.freeList = append(d.freeList, victim)
				d.releaseStalled()
				if d.gcWaiting {
					d.gcWaiting = false
					d.eng.After(0, d.gcStep)
				}
			})
		}
		d.eng.After(0, d.gcStep)
	}
	if remaining == 0 {
		finishVictim()
		return
	}
	for _, ppn := range migrate {
		lpn := d.p2l[ppn]
		newPPN, ch := d.allocPage(lpn, true)
		d.mapPage(lpn, newPPN)
		// Read old page then program new page.
		src := d.chans[fb.channel]
		src.readBus.Submit(size*sim.Second/d.cfg.ChannelReadBW, func(_, _ sim.Time) {
			src.dies.Submit(d.cfg.DieReadLatency+size*sim.Second/d.cfg.DieReadBW, func(_, _ sim.Time) {
				dst := d.chans[ch]
				dst.writeBus.Submit(size*sim.Second/d.cfg.ChannelWriteBW, func(_, _ sim.Time) {
					dst.dies.Submit(size*sim.Second/d.cfg.DieWriteBW, func(_, _ sim.Time) {
						d.programmed += uint64(size)
						d.gcMigrated += uint64(size)
						remaining--
						if remaining == 0 {
							finishVictim()
						}
					})
				})
			})
		})
	}
}

// pickVictim returns the full block with the fewest valid pages (greedy),
// or -1 when no block is collectible.
func (d *Device) pickVictim() int {
	best, bestValid := -1, d.cfg.PagesPerBlock+1
	for i := range d.blocks {
		fb := &d.blocks[i]
		if fb.free || !fb.full {
			continue
		}
		// Skip active blocks.
		if fb.valid < bestValid {
			best, bestValid = i, fb.valid
		}
	}
	return best
}

// ResetAccounting zeroes the device's traffic counters.
func (d *Device) ResetAccounting() {
	d.userWritten, d.programmed, d.gcMigrated = 0, 0, 0
	d.erases, d.gcEvents = 0, 0
}
