package volume

import (
	"errors"
	"testing"

	"biza/internal/storerr"
)

// TestDeleteReclaimsRange: a deleted volume's extent is trimmed, counted
// free again, and reusable by a later open.
func TestDeleteReclaimsRange(t *testing.T) {
	_, _, m := newManager(t, 1000, Config{})
	a, _ := m.Open("a", Options{Blocks: 400})
	if _, err := m.Open("b", Options{Blocks: 600}); err != nil {
		t.Fatal(err)
	}
	if free := m.FreeBlocks(); free != 0 {
		t.Fatalf("free = %d, want 0", free)
	}
	if err := m.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if m.Volumes() != 1 {
		t.Fatalf("volumes = %d, want 1", m.Volumes())
	}
	if free := m.FreeBlocks(); free != 400 {
		t.Fatalf("free after delete = %d, want 400", free)
	}
	// The freed extent is below b's range; a new volume must land in it.
	c, err := m.Open("c", Options{Blocks: 400})
	if err != nil {
		t.Fatal(err)
	}
	if c.base != 0 {
		t.Fatalf("c.base = %d, want 0 (reused extent)", c.base)
	}
	// The deleted handle refuses I/O.
	if err := a.WriteSync(0, 1, nil); !errors.Is(err, storerr.ErrNotFound) {
		t.Fatalf("write on deleted volume: err = %v, want ErrNotFound", err)
	}
}

// TestDeleteRetractsFrontier: freeing the last volume rolls the
// allocation frontier back so the space is contiguous again.
func TestDeleteRetractsFrontier(t *testing.T) {
	_, _, m := newManager(t, 1000, Config{})
	m.Open("a", Options{Blocks: 300})
	m.Open("b", Options{Blocks: 300})
	if err := m.Delete("b"); err != nil {
		t.Fatal(err)
	}
	if m.nextLB != 300 || len(m.free) != 0 {
		t.Fatalf("nextLB = %d free = %v, want frontier retracted to 300", m.nextLB, m.free)
	}
	// A delete of a, now frontier-adjacent through coalescing, retracts
	// fully.
	if err := m.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if m.nextLB != 0 || len(m.free) != 0 {
		t.Fatalf("nextLB = %d free = %v, want empty array", m.nextLB, m.free)
	}
}

// TestResizeGrowAndShrink exercises in-place growth (frontier and
// adjacent-extent) and tail-shrink reclamation.
func TestResizeGrowAndShrink(t *testing.T) {
	_, _, m := newManager(t, 1000, Config{})
	a, _ := m.Open("a", Options{Blocks: 200})
	// Frontier growth.
	if err := m.Resize("a", 300); err != nil {
		t.Fatal(err)
	}
	if a.Blocks() != 300 || m.nextLB != 300 {
		t.Fatalf("blocks = %d nextLB = %d, want 300/300", a.Blocks(), m.nextLB)
	}
	b, _ := m.Open("b", Options{Blocks: 200})
	// a is now boxed in by b: growth must fail even with frontier space.
	if err := m.Resize("a", 400); !errors.Is(err, storerr.ErrNoSpace) {
		t.Fatalf("boxed-in grow: err = %v, want ErrNoSpace", err)
	}
	// Shrink b, then grow it back into its own reclaimed tail.
	if err := m.Resize("b", 100); err != nil {
		t.Fatal(err)
	}
	if free := m.FreeBlocks(); free != 600 {
		t.Fatalf("free after shrink = %d, want 600", free)
	}
	if err := m.Resize("b", 250); err != nil {
		t.Fatal(err)
	}
	if b.Blocks() != 250 {
		t.Fatalf("b.Blocks() = %d, want 250", b.Blocks())
	}
	// Delete a; b can still not grow left (extents grow right only), but
	// a fresh open fits in a's old range.
	if err := m.Delete("a"); err != nil {
		t.Fatal(err)
	}
	c, err := m.Open("c", Options{Blocks: 300})
	if err != nil {
		t.Fatal(err)
	}
	if c.base != 0 {
		t.Fatalf("c.base = %d, want 0", c.base)
	}
}

// TestVolumeErrorSentinels pins the errors.Is contract for the manager's
// mutating surface.
func TestVolumeErrorSentinels(t *testing.T) {
	eng, _, m := newManager(t, 1000, Config{})
	if _, err := m.Open("x", Options{Blocks: 0}); !errors.Is(err, storerr.ErrBadArgument) {
		t.Fatalf("zero-capacity open: err = %v, want ErrBadArgument", err)
	}
	v, _ := m.Open("v", Options{Blocks: 100})
	if _, err := m.Open("v", Options{Blocks: 100}); !errors.Is(err, storerr.ErrExists) {
		t.Fatalf("duplicate open: err = %v, want ErrExists", err)
	}
	if _, err := m.Open("big", Options{Blocks: 10000}); !errors.Is(err, storerr.ErrNoSpace) {
		t.Fatalf("oversize open: err = %v, want ErrNoSpace", err)
	}
	if err := m.Resize("ghost", 10); !errors.Is(err, storerr.ErrNotFound) {
		t.Fatalf("resize unknown: err = %v, want ErrNotFound", err)
	}
	if err := m.Delete("ghost"); !errors.Is(err, storerr.ErrNotFound) {
		t.Fatalf("delete unknown: err = %v, want ErrNotFound", err)
	}
	if err := m.Resize("v", 0); !errors.Is(err, storerr.ErrBadArgument) {
		t.Fatalf("resize to zero: err = %v, want ErrBadArgument", err)
	}
	// A volume with queued I/O refuses shrink and delete.
	v.Write(0, 4, nil, nil)
	if err := m.Resize("v", 50); !errors.Is(err, storerr.ErrBusy) {
		t.Fatalf("busy shrink: err = %v, want ErrBusy", err)
	}
	if err := m.Delete("v"); !errors.Is(err, storerr.ErrBusy) {
		t.Fatalf("busy delete: err = %v, want ErrBusy", err)
	}
	eng.Run()
	if err := m.Delete("v"); err != nil {
		t.Fatalf("quiesced delete: %v", err)
	}
}
