package volume

import (
	"bytes"
	"math"
	"testing"

	"biza/internal/metrics"
	"biza/internal/obs"
)

// The volume layer must emit spans with qos-stall and queue stage marks
// that the attribution engine decomposes exactly.
func TestVolumeSpansAndStageMarks(t *testing.T) {
	eng, _, m := newManager(t, 1<<20, Config{MaxInflight: 1})
	tr := obs.New(obs.Config{})
	tr.SetName("vol")
	m.SetTracer(tr)

	// Tenant a: 1-block burst and a slow refill, so its second write
	// stalls at the token bucket. Tenant b: unlimited, but MaxInflight=1
	// makes it wait in the fair queue behind a's dispatch.
	a, err := m.Open("a", Options{Blocks: 1 << 10, QoS: QoS{RateBytesPerSec: 4096 << 10, BurstBytes: 4096}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Open("b", Options{Blocks: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	a.Write(0, 1, nil, nil)
	a.Write(1, 1, nil, nil) // gated: bucket is empty
	b.Write(0, 1, nil, nil) // queued: in-flight window held by a
	b.Read(0, 1, nil)
	eng.Run()

	var begins, ends, qosMarks, queueMarks int
	for _, r := range tr.Records() {
		switch r.Kind {
		case obs.RecSpanBegin:
			if r.Layer == obs.LayerVolume {
				begins++
			}
		case obs.RecSpanEnd:
			ends++
		case obs.RecMark:
			if r.Layer != obs.LayerVolume {
				continue
			}
			switch obs.Phase(r.Sub) {
			case obs.PhaseQoS:
				qosMarks++
			case obs.PhaseQueue:
				queueMarks++
			}
			if r.Arg0 <= r.TS {
				t.Fatalf("zero/negative-duration mark emitted: %+v", r)
			}
		}
	}
	if begins != 4 || ends != 4 {
		t.Fatalf("spans: %d begins, %d ends, want 4/4", begins, ends)
	}
	if qosMarks == 0 {
		t.Fatal("no qos-stall marks despite a token-bucket stall")
	}
	if queueMarks == 0 {
		t.Fatal("no queue marks despite WFQ backlog")
	}

	// End-to-end check through the export + attribution pipeline: stage
	// means must sum exactly to the e2e mean for every volume group.
	var buf bytes.Buffer
	if err := obs.WriteJSONL(&buf, []*obs.Trace{tr}); err != nil {
		t.Fatal(err)
	}
	attr, err := obs.Attribute(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if attr.Spans != 4 {
		t.Fatalf("attributed %d spans, want 4", attr.Spans)
	}
	var sawQoS bool
	for _, g := range attr.Procs[0].Groups {
		var sum float64
		for st, h := range g.Stage {
			sum += h.Mean()
			if st == obs.StageQoS && h.Max() > 0 {
				sawQoS = true
			}
		}
		if e2e := g.E2E.Mean(); math.Abs(sum-e2e) > 1e-9 {
			t.Fatalf("group %s: stage means sum %v != e2e mean %v", g.Name, sum, e2e)
		}
	}
	if !sawQoS {
		t.Fatal("attribution shows no qos-stall time")
	}
}

// With a tracer AND a series sampler attached, the steady-state volume
// cycle must still allocate nothing: ring emission overwrites in place
// once the ring has wrapped, probe aggregates and sampler sources are
// registered once, and stage marks are flat records.
func TestVolumeTracedSteadyStateAllocationFree(t *testing.T) {
	eng, _, m := newManager(t, 1<<20, Config{MaxInflight: 4})
	tr := obs.New(obs.Config{Capacity: 256}) // small ring: wraps during warm-up
	tr.EnableSampler(metrics.SamplerConfig{Interval: int64(50 * 1000), MaxPoints: 64})
	m.SetTracer(tr)
	v, _ := m.Open("v", Options{Blocks: 1 << 12})
	warm := func(n int) {
		for i := 0; i < n; i++ {
			v.Write(0, 4, nil, nil)
		}
		eng.Run()
	}
	warm(64)
	if tr.Dropped() == 0 {
		t.Fatal("warm-up did not wrap the ring; alloc measurement would see append growth")
	}
	allocs := testing.AllocsPerRun(50, func() { warm(8) })
	if allocs > 0 {
		t.Fatalf("traced steady-state cycle allocates %.1f per run", allocs)
	}
}
