package volume

import (
	"errors"
	"testing"

	"biza/internal/blockdev"
	"biza/internal/sim"
)

// fakeDev is a deterministic single-server device: one op in service at a
// time, service time = fakeBase + cost·fakePerBlock. It makes queueing
// behind an aggressor visible, which is exactly what the QoS layer must
// bound. The device itself is the pooled event record, so steady-state
// operation allocates nothing.
type fakeDev struct {
	eng    *sim.Engine
	blocks int64

	fifo []fakeOp
	head int
	busy bool

	served int
	order  []int64 // lbas in service order, for FIFO checks
}

type fakeOp struct {
	write   bool
	lba     int64
	nblocks int
	wdone   func(blockdev.WriteResult)
	rdone   func(blockdev.ReadResult)
}

const (
	fakeBase     = 10 * sim.Microsecond
	fakePerBlock = 2 * sim.Microsecond
)

func newFakeDev(eng *sim.Engine, blocks int64) *fakeDev {
	return &fakeDev{eng: eng, blocks: blocks}
}

func (d *fakeDev) BlockSize() int { return 4096 }
func (d *fakeDev) Blocks() int64  { return d.blocks }

func (d *fakeDev) push(op fakeOp) {
	if d.head == len(d.fifo) {
		d.fifo = d.fifo[:0]
		d.head = 0
	}
	d.fifo = append(d.fifo, op)
	if !d.busy {
		d.start()
	}
}

func (d *fakeDev) start() {
	d.busy = true
	op := &d.fifo[d.head]
	d.eng.AfterEvent(fakeBase+sim.Time(op.nblocks)*fakePerBlock, d, 0, 0)
}

// Fire completes the op in service and starts the next.
func (d *fakeDev) Fire(_, _ sim.Time) {
	op := d.fifo[d.head]
	d.fifo[d.head] = fakeOp{}
	d.head++
	d.busy = false
	d.served++
	if d.order != nil {
		d.order = append(d.order, op.lba)
	}
	if op.write {
		op.wdone(blockdev.WriteResult{})
	} else {
		op.rdone(blockdev.ReadResult{})
	}
	if d.head < len(d.fifo) && !d.busy {
		d.start()
	}
}

func (d *fakeDev) Write(lba int64, nblocks int, data []byte, done func(blockdev.WriteResult)) {
	d.push(fakeOp{write: true, lba: lba, nblocks: nblocks, wdone: done})
}

func (d *fakeDev) Read(lba int64, nblocks int, done func(blockdev.ReadResult)) {
	d.push(fakeOp{lba: lba, nblocks: nblocks, rdone: done})
}

func (d *fakeDev) Trim(lba int64, nblocks int) {}

func newManager(t *testing.T, blocks int64, cfg Config) (*sim.Engine, *fakeDev, *Manager) {
	t.Helper()
	eng := sim.NewEngine()
	dev := newFakeDev(eng, blocks)
	return eng, dev, New(eng, dev, cfg)
}

func TestOpenAllocatesDisjointRanges(t *testing.T) {
	eng, dev, m := newManager(t, 1000, Config{})
	a, err := m.Open("a", Options{Blocks: 400})
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Open("b", Options{Blocks: 600})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Open("c", Options{Blocks: 1}); err == nil {
		t.Fatal("over-allocation succeeded")
	}
	if _, err := m.Open("a", Options{Blocks: 1}); err == nil {
		t.Fatal("duplicate name succeeded")
	}
	if _, err := m.Open("z", Options{Blocks: 0}); err == nil {
		t.Fatal("zero-capacity open succeeded")
	}
	if m.Volume("a") != a || m.ByID(b.ID()) != b || m.Volumes() != 2 {
		t.Fatal("lookup mismatch")
	}

	// Both tenants write "their" LBA 0; the device must see the two
	// distinct array-space addresses.
	dev.order = []int64{}
	a.Write(0, 1, nil, nil)
	b.Write(0, 1, nil, nil)
	eng.Run()
	if len(dev.order) != 2 || dev.order[0] != 0 || dev.order[1] != 400 {
		t.Fatalf("array-space lbas = %v, want [0 400]", dev.order)
	}
}

func TestBoundsChecked(t *testing.T) {
	eng, _, m := newManager(t, 100, Config{})
	v, _ := m.Open("v", Options{Blocks: 10})
	var errs []error
	collectW := func(r blockdev.WriteResult) { errs = append(errs, r.Err) }
	collectR := func(r blockdev.ReadResult) { errs = append(errs, r.Err) }
	v.Write(9, 2, nil, collectW) // crosses the end
	v.Write(-1, 1, nil, collectW)
	v.Read(10, 1, collectR)
	v.Read(0, 0, collectR)
	eng.Run()
	if len(errs) != 4 {
		t.Fatalf("%d completions, want 4", len(errs))
	}
	for i, err := range errs {
		if !errors.Is(err, blockdev.ErrOutOfRange) && !errors.Is(err, blockdev.ErrBadArgument) {
			t.Fatalf("completion %d: err = %v", i, err)
		}
	}
	// Out-of-range requests must not reach the array or the ready queues.
	if st := v.Stats(); st.QueueDepth != 0 || st.Ops != 0 {
		t.Fatalf("stats after rejected ops: %+v", st)
	}
}

func TestPerVolumeFIFO(t *testing.T) {
	eng, dev, m := newManager(t, 1000, Config{})
	v, _ := m.Open("v", Options{Blocks: 100})
	dev.order = []int64{}
	for i := 0; i < 20; i++ {
		v.Write(int64(i), 1, nil, nil)
	}
	eng.Run()
	for i, lba := range dev.order {
		if lba != int64(i) {
			t.Fatalf("service order %v: position %d holds lba %d", dev.order, i, lba)
		}
	}
}

// TestTokenBucketPacing: a rate-limited tenant's requests are admitted at
// exactly the provisioned rate once the burst is spent, in virtual time.
func TestTokenBucketPacing(t *testing.T) {
	eng, _, m := newManager(t, 1<<20, Config{})
	bs := int64(m.BlockSize())
	// 4 MiB/s with a one-block burst: after the first block, each
	// subsequent block must wait bs/4MiB seconds = bs/4Mi * 1e9 ns.
	v, _ := m.Open("v", Options{Blocks: 1 << 10, QoS: QoS{
		RateBytesPerSec: 4 << 20,
		BurstBytes:      bs,
	}})
	const n = 8
	var last sim.Time
	var done int
	for i := 0; i < n; i++ {
		v.Write(int64(i), 1, nil, func(r blockdev.WriteResult) {
			if r.Err != nil {
				t.Errorf("write: %v", r.Err)
			}
			last = eng.Now()
			done++
		})
	}
	eng.Run()
	if done != n {
		t.Fatalf("%d completions, want %d", done, n)
	}
	gap := sim.Time(bs * int64(nsPerSec) / (4 << 20)) // ns per block at rate
	wantMin := sim.Time(n-1) * gap                    // first block rides the burst
	if last < wantMin || last > wantMin+gap {
		t.Fatalf("last completion at %dns, want within [%d, %d]", last, wantMin, wantMin+gap)
	}
	if st := v.Stats(); st.ThrottleStalls != n-1 {
		t.Fatalf("throttle stalls = %d, want %d", st.ThrottleStalls, n-1)
	}
}

// TestNoisyNeighborIsolation: an aggressor keeping a deep queue of large
// writes must not blow up a weighted interactive tenant's latency when
// QoS is on; with DisableQoS the victim queues behind the full backlog.
func TestNoisyNeighborIsolation(t *testing.T) {
	run := func(cfg Config) (victimLat sim.Time) {
		eng, _, m := newManager(t, 1<<20, cfg)
		agg, _ := m.Open("aggressor", Options{Blocks: 1 << 12, QoS: QoS{Weight: 1}})
		vic, _ := m.Open("victim", Options{Blocks: 1 << 12, QoS: QoS{Weight: 4}})

		// Aggressor: 64 outstanding 32-block writes, resubmitting forever.
		stop := false
		var pump func(r blockdev.WriteResult)
		pump = func(r blockdev.WriteResult) {
			if !stop {
				agg.Write(0, 32, nil, pump)
			}
		}
		for i := 0; i < 64; i++ {
			agg.Write(0, 32, nil, pump)
		}

		// Let the backlog establish, then issue one interactive read.
		eng.RunUntil(5 * sim.Millisecond)
		start := eng.Now()
		vic.Read(0, 1, func(r blockdev.ReadResult) {
			victimLat = eng.Now() - start
			stop = true
		})
		eng.RunUntil(start + 10*sim.Second)
		if victimLat == 0 {
			t.Fatal("victim read never completed")
		}
		return victimLat
	}

	qos := run(Config{MaxInflight: 8})
	raw := run(Config{DisableQoS: true})
	// With QoS the victim waits behind at most the in-flight window; with
	// raw FIFO it waits behind the entire aggressor backlog.
	if qos*4 > raw {
		t.Fatalf("isolation too weak: victim latency %dns with QoS vs %dns without", qos, raw)
	}
}

// TestWeightedShareUnderContention: two saturating tenants split device
// throughput by WFQ weight.
func TestWeightedShareUnderContention(t *testing.T) {
	eng, _, m := newManager(t, 1<<20, Config{MaxInflight: 4})
	heavy, _ := m.Open("heavy", Options{Blocks: 1 << 12, QoS: QoS{Weight: 3}})
	light, _ := m.Open("light", Options{Blocks: 1 << 12, QoS: QoS{Weight: 1}})
	for _, v := range []*Volume{heavy, light} {
		v := v
		var pump func(r blockdev.WriteResult)
		pump = func(r blockdev.WriteResult) { v.Write(0, 4, nil, pump) }
		for i := 0; i < 16; i++ {
			v.Write(0, 4, nil, pump)
		}
	}
	eng.RunUntil(200 * sim.Millisecond)
	h, l := heavy.Stats().Ops, light.Stats().Ops
	ratio := float64(h) / float64(l)
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("ops ratio heavy/light = %.2f (%d/%d), want ~3", ratio, h, l)
	}
}

func TestDisableQoSPassthrough(t *testing.T) {
	eng, dev, m := newManager(t, 1000, Config{DisableQoS: true})
	v, _ := m.Open("v", Options{Blocks: 100, QoS: QoS{RateBytesPerSec: 1}})
	dev.order = []int64{}
	for i := 0; i < 10; i++ {
		v.Write(int64(i), 1, nil, nil)
	}
	eng.Run()
	if dev.served != 10 {
		t.Fatalf("served %d, want 10 (rate limit must be bypassed)", dev.served)
	}
	if st := v.Stats(); st.ThrottleStalls != 0 || st.Ops != 10 {
		t.Fatalf("stats %+v", st)
	}
}

func TestTrimMappedAndForwarded(t *testing.T) {
	eng, _, m := newManager(t, 1000, Config{})
	_, _ = m.Open("pad", Options{Blocks: 300})
	v, _ := m.Open("v", Options{Blocks: 100})
	v.Trim(10, 5)
	v.Trim(99, 5) // out of range: dropped at the volume boundary
	eng.Run()
	if st := v.Stats(); st.Trims != 1 {
		t.Fatalf("trims = %d, want 1", st.Trims)
	}
}

func TestStatsAccounting(t *testing.T) {
	eng, _, m := newManager(t, 1<<16, Config{})
	v, _ := m.Open("v", Options{Blocks: 1 << 10})
	for i := 0; i < 5; i++ {
		v.Write(0, 2, nil, nil)
		v.Read(0, 1, nil)
	}
	eng.Run()
	st := v.Stats()
	if st.Ops != 10 || st.Writes != 5 || st.Reads != 5 {
		t.Fatalf("counts %+v", st)
	}
	wantBytes := uint64(5*2+5*1) * uint64(m.BlockSize())
	if st.Bytes != wantBytes {
		t.Fatalf("bytes = %d, want %d", st.Bytes, wantBytes)
	}
	if st.QueueDepth != 0 || st.MaxQueueDepth < 1 {
		t.Fatalf("queue depth %+v", st)
	}
}

// TestSteadyStateAllocationFree: after warm-up, the submit→dispatch→
// complete cycle allocates nothing in the volume layer.
func TestSteadyStateAllocationFree(t *testing.T) {
	eng, _, m := newManager(t, 1<<20, Config{MaxInflight: 4})
	v, _ := m.Open("v", Options{Blocks: 1 << 12})
	warm := func(n int) {
		for i := 0; i < n; i++ {
			v.Write(0, 4, nil, nil)
		}
		eng.Run()
	}
	warm(64)
	allocs := testing.AllocsPerRun(50, func() { warm(8) })
	if allocs > 0 {
		t.Fatalf("steady-state cycle allocates %.1f per run", allocs)
	}
}

// TestDeterministicReplay: the same multi-tenant schedule runs twice to
// identical virtual end times and stats.
func TestDeterministicReplay(t *testing.T) {
	run := func() (sim.Time, []Stats) {
		eng, _, m := newManager(t, 1<<20, Config{MaxInflight: 6})
		var vols []*Volume
		for i := 0; i < 4; i++ {
			v, err := m.Open(string(rune('a'+i)), Options{Blocks: 1 << 10, QoS: QoS{
				Weight:          1 + i,
				RateBytesPerSec: int64(1+i) << 22,
			}})
			if err != nil {
				t.Fatal(err)
			}
			vols = append(vols, v)
		}
		for i := 0; i < 200; i++ {
			v := vols[i%len(vols)]
			if i%3 == 0 {
				v.Read(int64(i%100), 1, nil)
			} else {
				v.Write(int64(i%100), 1+i%8, nil, nil)
			}
		}
		eng.Run()
		stats := make([]Stats, len(vols))
		for i, v := range vols {
			stats[i] = v.Stats()
		}
		return eng.Now(), stats
	}
	t1, s1 := run()
	t2, s2 := run()
	if t1 != t2 {
		t.Fatalf("end times differ: %d vs %d", t1, t2)
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("volume %d stats diverged: %+v vs %+v", i, s1[i], s2[i])
		}
	}
}
