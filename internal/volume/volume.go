// Package volume multiplexes many named tenant volumes onto one array
// front end (any blockdev.Device) with per-tenant QoS isolation — the
// "millions of users" layer over a biza.Array.
//
// Each volume is a contiguous LBA range of the array carved out at open
// time; tenants address their own space from zero and the manager
// relocates every request. Isolation is enforced at the manager's
// submission shim into the array by two mechanisms, both running entirely
// in virtual time:
//
//   - a per-tenant token bucket (RateBytesPerSec, BurstBytes) that delays
//     admission of requests exceeding the tenant's provisioned rate, and
//   - weighted-fair queueing (nvme.WFQ, self-clocked fair queueing) over
//     the admitted backlog, dispatched into the array through a bounded
//     in-flight window (MaxInflight) so one saturating tenant can neither
//     monopolize the array's internal queues nor starve other tenants.
//
// The hot path follows the repository's event-core discipline: request
// records are pooled per manager with cached completion closures, the WFQ
// arbiter reuses its slices, and the per-tenant probes compile to nothing
// when no tracer is attached — steady-state submission allocates nothing.
//
// Everything runs on the array's simulation engine; a manager (and all of
// its volumes) belongs to one engine and therefore one shard. Determinism
// follows from the engine's: identical request sequences replay
// identically at any -parallel or -shards setting.
package volume

import (
	"errors"
	"fmt"
	"sort"

	"biza/internal/blockdev"
	"biza/internal/nvme"
	"biza/internal/obs"
	"biza/internal/sim"
	"biza/internal/storerr"
)

// ErrIncomplete reports a synchronous operation that did not finish when
// the event queue drained (e.g. the underlying array crashed mid-flight).
var ErrIncomplete = errors.New("volume: operation did not complete")

// Config parameterizes a Manager.
type Config struct {
	// MaxInflight bounds the ops concurrently outstanding at the array
	// across all volumes — the WFQ dispatch window. 0 uses
	// DefaultMaxInflight.
	MaxInflight int
	// DisableQoS bypasses admission control entirely: requests map their
	// LBA range and go straight to the array in arrival order. Stats are
	// still kept. This is the noisy-neighbor baseline, not a fast path.
	DisableQoS bool
}

// DefaultMaxInflight is sized to keep a 4-member array busy without
// letting any tenant build deep device-side queues: roughly two requests
// per member channel group.
const DefaultMaxInflight = 32

func (c *Config) maxInflight() int {
	if c.MaxInflight < 1 {
		return DefaultMaxInflight
	}
	return c.MaxInflight
}

// QoS is one tenant's service class.
type QoS struct {
	// Weight is the tenant's WFQ share against other backlogged tenants
	// (minimum 1).
	Weight int
	// RateBytesPerSec caps the tenant's sustained throughput via a token
	// bucket; 0 = unlimited.
	RateBytesPerSec int64
	// BurstBytes is the bucket depth: how many bytes may be admitted
	// instantaneously after an idle period. 0 uses max(256 KiB, one
	// hundredth of the rate).
	BurstBytes int64
}

func (q *QoS) weight() int {
	if q.Weight < 1 {
		return 1
	}
	return q.Weight
}

func (q *QoS) burst() int64 {
	if q.BurstBytes > 0 {
		return q.BurstBytes
	}
	b := q.RateBytesPerSec / 100
	if b < 256<<10 {
		b = 256 << 10
	}
	return b
}

// Options configures one volume at open time.
type Options struct {
	// Blocks is the volume capacity in array blocks (required).
	Blocks int64
	// QoS is the tenant's service class; the zero value is weight 1,
	// unlimited rate.
	QoS QoS
}

// Stats is a snapshot of one volume's accounting.
type Stats struct {
	Ops, Reads, Writes uint64
	Trims              uint64
	Bytes              uint64 // payload bytes of completed reads+writes
	ThrottleStalls     uint64 // ops delayed by the token bucket
	ThrottleNanos      int64  // cumulative virtual ns spent gated
	QueueDepth         int    // queued + in-flight right now
	MaxQueueDepth      int
}

// Manager multiplexes tenant volumes onto one array front end.
type Manager struct {
	eng *sim.Engine
	dev blockdev.Device
	cfg Config
	bs  int

	vols   map[string]*Volume
	byID   []*Volume // dense open-order ids; deleted volumes tombstone to nil
	nextLB int64
	free   []extent // reclaimed ranges below nextLB, sorted and coalesced

	wfq      *nvme.WFQ
	inflight int

	opFree []*vop

	tr *obs.Trace
}

// New returns a manager carving volumes out of dev on eng.
func New(eng *sim.Engine, dev blockdev.Device, cfg Config) *Manager {
	return &Manager{
		eng:  eng,
		dev:  dev,
		cfg:  cfg,
		bs:   dev.BlockSize(),
		vols: make(map[string]*Volume),
		wfq:  nvme.NewWFQ(),
	}
}

// SetTracer attaches an observability trace: per-tenant queue depth,
// throttle stalls, and achieved bytes emit as probes keyed by tenant id.
// Nil detaches (hot-path emission then costs one pointer check).
func (m *Manager) SetTracer(tr *obs.Trace) { m.tr = tr }

// Engine returns the simulation engine the manager runs on.
func (m *Manager) Engine() *sim.Engine { return m.eng }

// BlockSize reports the array's logical block size in bytes.
func (m *Manager) BlockSize() int { return m.bs }

// FreeBlocks reports unallocated array capacity: the untouched frontier
// plus every reclaimed extent (contiguity not guaranteed — Open needs one
// extent large enough).
func (m *Manager) FreeBlocks() int64 {
	free := m.dev.Blocks() - m.nextLB
	for _, e := range m.free {
		free += e.blocks
	}
	return free
}

// Volumes reports the number of open volumes.
func (m *Manager) Volumes() int { return len(m.vols) }

// Volume returns the open volume with the given name, or nil.
func (m *Manager) Volume(name string) *Volume { return m.vols[name] }

// ByID returns the volume with the given dense id (open order), or nil
// if that volume has been deleted.
func (m *Manager) ByID(id int) *Volume { return m.byID[id] }

// extent is one contiguous free LBA range of the array.
type extent struct{ base, blocks int64 }

// alloc finds blocks of contiguous array space: first fit over the
// reclaimed-extent list, else the untouched frontier.
func (m *Manager) alloc(blocks int64) (int64, error) {
	for i, e := range m.free {
		if e.blocks >= blocks {
			base := e.base
			if e.blocks == blocks {
				m.free = append(m.free[:i], m.free[i+1:]...)
			} else {
				m.free[i] = extent{base: e.base + blocks, blocks: e.blocks - blocks}
			}
			return base, nil
		}
	}
	if m.nextLB+blocks > m.dev.Blocks() {
		return 0, fmt.Errorf("volume: %d blocks requested, %d free: %w",
			blocks, m.FreeBlocks(), storerr.ErrNoSpace)
	}
	base := m.nextLB
	m.nextLB += blocks
	return base, nil
}

// reclaim returns [base, base+blocks) to the free list, coalescing with
// adjacent extents and retracting the allocation frontier when the freed
// range reaches it.
func (m *Manager) reclaim(base, blocks int64) {
	i := sort.Search(len(m.free), func(i int) bool { return m.free[i].base > base })
	m.free = append(m.free, extent{})
	copy(m.free[i+1:], m.free[i:])
	m.free[i] = extent{base: base, blocks: blocks}
	if i+1 < len(m.free) && m.free[i].base+m.free[i].blocks == m.free[i+1].base {
		m.free[i].blocks += m.free[i+1].blocks
		m.free = append(m.free[:i+1], m.free[i+2:]...)
	}
	if i > 0 && m.free[i-1].base+m.free[i-1].blocks == m.free[i].base {
		m.free[i-1].blocks += m.free[i].blocks
		m.free = append(m.free[:i], m.free[i+1:]...)
	}
	if n := len(m.free); n > 0 && m.free[n-1].base+m.free[n-1].blocks == m.nextLB {
		m.nextLB = m.free[n-1].base
		m.free = m.free[:n-1]
	}
}

// Open carves a new named volume of opts.Blocks blocks out of the
// array's remaining capacity (reclaimed extents first, then the
// frontier).
func (m *Manager) Open(name string, opts Options) (*Volume, error) {
	if opts.Blocks < 1 {
		return nil, fmt.Errorf("volume: %q: capacity must be positive: %w", name, storerr.ErrBadArgument)
	}
	if _, ok := m.vols[name]; ok {
		return nil, fmt.Errorf("volume: %q already open: %w", name, storerr.ErrExists)
	}
	base, err := m.alloc(opts.Blocks)
	if err != nil {
		return nil, fmt.Errorf("volume: %q: %w", name, err)
	}
	v := &Volume{
		m:      m,
		id:     len(m.byID),
		name:   name,
		base:   base,
		blocks: opts.Blocks,
		rate:   opts.QoS.RateBytesPerSec,
	}
	if v.rate > 0 {
		v.burstNs = opts.QoS.burst() * nsPerSec
		v.tokensNs = v.burstNs // a fresh tenant starts with a full bucket
	}
	flow := m.wfq.AddFlow(opts.QoS.weight())
	if flow != v.id {
		panic("volume: wfq flow ids diverged from volume ids")
	}
	m.vols[name] = v
	m.byID = append(m.byID, v)
	return v, nil
}

// Resize grows or shrinks an open volume in place. Growth needs the
// blocks immediately after the volume to be free (an adjacent reclaimed
// extent or the allocation frontier) — volumes are contiguous ranges and
// are never relocated, so a blocked grow returns storerr.ErrNoSpace even
// when total free capacity would suffice. Shrink requires the volume
// quiescent (no queued or in-flight I/O, else storerr.ErrBusy); the cut
// tail is trimmed on the array and reclaimed for future opens.
func (m *Manager) Resize(name string, newBlocks int64) error {
	v := m.vols[name]
	if v == nil {
		return fmt.Errorf("volume: %q not open: %w", name, storerr.ErrNotFound)
	}
	if newBlocks < 1 {
		return fmt.Errorf("volume: %q: capacity must be positive: %w", name, storerr.ErrBadArgument)
	}
	switch {
	case newBlocks == v.blocks:
		return nil
	case newBlocks < v.blocks:
		if v.st.QueueDepth > 0 {
			return fmt.Errorf("volume: %q has %d ops in flight: %w", name, v.st.QueueDepth, storerr.ErrBusy)
		}
		cut := v.blocks - newBlocks
		v.blocks = newBlocks
		m.dev.Trim(v.base+newBlocks, int(cut))
		m.reclaim(v.base+newBlocks, cut)
		return nil
	default:
		grow := newBlocks - v.blocks
		end := v.base + v.blocks
		i := sort.Search(len(m.free), func(i int) bool { return m.free[i].base >= end })
		switch {
		case i < len(m.free) && m.free[i].base == end && m.free[i].blocks >= grow:
			if m.free[i].blocks == grow {
				m.free = append(m.free[:i], m.free[i+1:]...)
			} else {
				m.free[i] = extent{base: end + grow, blocks: m.free[i].blocks - grow}
			}
		case end == m.nextLB && m.nextLB+grow <= m.dev.Blocks():
			m.nextLB += grow
		default:
			return fmt.Errorf("volume: %q: no contiguous space to grow by %d blocks: %w",
				name, grow, storerr.ErrNoSpace)
		}
		v.blocks = newBlocks
		return nil
	}
}

// Delete closes an open volume and reclaims its LBA range: the whole
// range is trimmed on the array (dead-block advisory for GC) and returned
// to the free list. The volume must be quiescent (storerr.ErrBusy
// otherwise). Its dense id is tombstoned, never reused — WFQ flow ids
// stay aligned with volume ids, and the dead flow can never pop because a
// quiesced volume has nothing queued.
func (m *Manager) Delete(name string) error {
	v := m.vols[name]
	if v == nil {
		return fmt.Errorf("volume: %q not open: %w", name, storerr.ErrNotFound)
	}
	if v.st.QueueDepth > 0 {
		return fmt.Errorf("volume: %q has %d ops in flight: %w", name, v.st.QueueDepth, storerr.ErrBusy)
	}
	delete(m.vols, name)
	m.byID[v.id] = nil
	v.deleted = true
	m.dev.Trim(v.base, int(v.blocks))
	m.reclaim(v.base, v.blocks)
	return nil
}

const nsPerSec = int64(sim.Second)

// vop is a pooled request record traveling from tenant submission through
// the token bucket and WFQ into the array. The completion closures are
// cached on the record (allocated once, reused across recycles) so a
// steady-state request allocates nothing in this layer.
type vop struct {
	v       *Volume
	write   bool
	lba     int64 // array-space
	nblocks int
	data    []byte
	cost    int64 // payload bytes (token-bucket and WFQ currency)
	start   sim.Time
	span    obs.SpanID // volume-layer span (0 when untraced)
	gateAt  sim.Time   // when the op entered the token-bucket gate
	admitAt sim.Time   // when the op entered the WFQ backlog
	wdone   func(blockdev.WriteResult)
	rdone   func(blockdev.ReadResult)
	wfwd    func(blockdev.WriteResult)
	rfwd    func(blockdev.ReadResult)
}

func (m *Manager) getOp() *vop {
	if n := len(m.opFree); n > 0 {
		op := m.opFree[n-1]
		m.opFree = m.opFree[:n-1]
		return op
	}
	op := &vop{}
	op.wfwd = func(r blockdev.WriteResult) { op.finishWrite(r) }
	op.rfwd = func(r blockdev.ReadResult) { op.finishRead(r) }
	return op
}

func (m *Manager) putOp(op *vop) {
	op.v, op.data = nil, nil
	op.wdone, op.rdone = nil, nil
	op.span = 0
	m.opFree = append(m.opFree, op)
}

// Volume is one tenant's LBA range plus its QoS state. All methods must
// run on the manager's engine goroutine (simulation discipline).
type Volume struct {
	m      *Manager
	id     int
	name   string
	base   int64
	blocks int64

	// Token bucket, scaled by nsPerSec so refill arithmetic is exact
	// integer math: tokensNs/nsPerSec is the byte balance.
	rate     int64 // bytes per second; 0 = unlimited
	burstNs  int64
	tokensNs int64
	refillAt sim.Time
	gated    []*vop // FIFO awaiting tokens
	gateHead int
	gateSet  bool // admission timer scheduled

	// ready is the admitted FIFO mirrored by the WFQ flow queue.
	ready     []*vop
	readyHead int

	deleted bool

	st Stats
}

// Name reports the volume's name.
func (v *Volume) Name() string { return v.name }

// ID reports the volume's dense id (open order) — the tenant id used in
// probe names.
func (v *Volume) ID() int { return v.id }

// Blocks reports the volume capacity in blocks.
func (v *Volume) Blocks() int64 { return v.blocks }

// BlockSize reports the logical block size in bytes.
func (v *Volume) BlockSize() int { return v.m.bs }

// Stats snapshots the volume's accounting.
func (v *Volume) Stats() Stats { return v.st }

func (v *Volume) check(lba int64, nblocks int) error {
	if v.deleted {
		return fmt.Errorf("volume: %q deleted: %w", v.name, storerr.ErrNotFound)
	}
	if nblocks < 1 || lba < 0 {
		return blockdev.ErrBadArgument
	}
	if lba+int64(nblocks) > v.blocks {
		return blockdev.ErrOutOfRange
	}
	return nil
}

// qd tracks the tenant queue depth (queued + in-flight), emitting the
// gauge probe when tracing is attached.
func (v *Volume) qd(delta int) {
	v.st.QueueDepth += delta
	if v.st.QueueDepth > v.st.MaxQueueDepth {
		v.st.MaxQueueDepth = v.st.QueueDepth
	}
	m := v.m
	if m.tr != nil {
		m.tr.Counter(int64(m.eng.Now()), obs.ProbeKey(obs.ProbeTenantQD, v.id, 0), int64(v.st.QueueDepth))
	}
}

// Write stores nblocks at the volume-relative lba. data may be nil
// (traffic without payload) or hold nblocks*BlockSize bytes.
func (v *Volume) Write(lba int64, nblocks int, data []byte, done func(blockdev.WriteResult)) {
	if err := v.check(lba, nblocks); err != nil {
		v.m.eng.After(0, func() {
			if done != nil {
				done(blockdev.WriteResult{Err: err})
			}
		})
		return
	}
	m := v.m
	op := m.getOp()
	op.v, op.write = v, true
	op.lba, op.nblocks, op.data = v.base+lba, nblocks, data
	op.cost = int64(nblocks) * int64(m.bs)
	op.start = m.eng.Now()
	op.span = m.tr.SpanBegin(op.start, obs.LayerVolume, obs.OpWrite, v.id, -1, lba, int64(nblocks))
	op.wdone = done
	v.st.Writes++
	v.submit(op)
}

// Read fetches nblocks at the volume-relative lba.
func (v *Volume) Read(lba int64, nblocks int, done func(blockdev.ReadResult)) {
	if err := v.check(lba, nblocks); err != nil {
		v.m.eng.After(0, func() {
			if done != nil {
				done(blockdev.ReadResult{Err: err})
			}
		})
		return
	}
	m := v.m
	op := m.getOp()
	op.v, op.write = v, false
	op.lba, op.nblocks, op.data = v.base+lba, nblocks, nil
	op.cost = int64(nblocks) * int64(m.bs)
	op.start = m.eng.Now()
	op.span = m.tr.SpanBegin(op.start, obs.LayerVolume, obs.OpRead, v.id, -1, lba, int64(nblocks))
	op.rdone = done
	v.st.Reads++
	v.submit(op)
}

// WriteSync writes nblocks at the volume-relative lba and drives the
// simulation until the write completes.
func (v *Volume) WriteSync(lba int64, nblocks int, data []byte) error {
	var res blockdev.WriteResult
	ok := false
	v.Write(lba, nblocks, data, func(r blockdev.WriteResult) { res = r; ok = true })
	v.m.eng.Run()
	if !ok {
		return ErrIncomplete
	}
	return res.Err
}

// ReadSync reads nblocks at the volume-relative lba, driving the
// simulation to completion. The payload is nil unless the array stores
// data.
func (v *Volume) ReadSync(lba int64, nblocks int) ([]byte, error) {
	var res blockdev.ReadResult
	ok := false
	v.Read(lba, nblocks, func(r blockdev.ReadResult) { res = r; ok = true })
	v.m.eng.Run()
	if !ok {
		return nil, ErrIncomplete
	}
	return res.Data, res.Err
}

// Trim declares a volume-relative range dead and forwards it to the
// array. Trims are advisory and bypass QoS admission.
func (v *Volume) Trim(lba int64, nblocks int) {
	if v.check(lba, nblocks) != nil {
		return
	}
	v.st.Trims++
	v.m.dev.Trim(v.base+lba, nblocks)
}

// submit routes an op through admission control into the array.
func (v *Volume) submit(op *vop) {
	v.qd(+1)
	m := v.m
	if m.cfg.DisableQoS {
		m.issue(op)
		return
	}
	if v.rate > 0 {
		// FIFO behind any op already gated, so tenants cannot reorder
		// around their own throttle.
		if v.gateLen() > 0 || !v.takeTokens(op.cost) {
			v.gatePush(op)
			return
		}
	}
	v.admit(op)
}

// admit hands an op to the WFQ backlog and kicks dispatch.
func (v *Volume) admit(op *vop) {
	if v.readyHead == len(v.ready) {
		v.ready = v.ready[:0]
		v.readyHead = 0
	}
	op.admitAt = v.m.eng.Now()
	v.ready = append(v.ready, op)
	v.m.wfq.Push(v.id, op.cost)
	v.m.dispatch()
}

// --- token bucket ---

// refill credits tokens for the time elapsed since the last refill.
func (v *Volume) refill() {
	now := v.m.eng.Now()
	if now > v.refillAt {
		v.tokensNs += (now - v.refillAt) * v.rate
		if v.tokensNs > v.burstNs {
			v.tokensNs = v.burstNs
		}
		v.refillAt = now
	}
}

// takeTokens consumes cost bytes of tokens if available.
func (v *Volume) takeTokens(cost int64) bool {
	v.refill()
	need := cost * nsPerSec
	if v.tokensNs < need {
		return false
	}
	v.tokensNs -= need
	return true
}

func (v *Volume) gateLen() int { return len(v.gated) - v.gateHead }

// gatePush queues an op behind the token bucket and (re)arms the
// admission timer for the head op's ready time.
func (v *Volume) gatePush(op *vop) {
	if v.gateHead == len(v.gated) {
		v.gated = v.gated[:0]
		v.gateHead = 0
	}
	v.gated = append(v.gated, op)
	op.gateAt = v.m.eng.Now()
	v.st.ThrottleStalls++
	m := v.m
	if m.tr != nil {
		m.tr.Counter(int64(m.eng.Now()), obs.ProbeKey(obs.ProbeTenantStalls, v.id, 0), int64(v.st.ThrottleStalls))
	}
	v.armGate()
}

// armGate schedules the admission event at the virtual time the bucket
// will afford the head gated op. The volume itself is the pooled event
// record (sim.Handler), so arming allocates nothing.
func (v *Volume) armGate() {
	if v.gateSet || v.gateLen() == 0 {
		return
	}
	v.refill()
	need := v.gated[v.gateHead].cost*nsPerSec - v.tokensNs
	wait := (need + v.rate - 1) / v.rate // ceil: never wake a hair early
	if wait < 1 {
		wait = 1
	}
	v.gateSet = true
	v.m.eng.AfterEvent(wait, v, 0, 0)
}

// Fire implements sim.Handler: the admission timer. It drains every
// affordable gated op into the WFQ backlog, re-arms for the next one, and
// kicks dispatch.
func (v *Volume) Fire(_, _ sim.Time) {
	v.gateSet = false
	for v.gateLen() > 0 {
		op := v.gated[v.gateHead]
		if !v.takeTokens(op.cost) {
			break
		}
		v.gated[v.gateHead] = nil
		v.gateHead++
		now := v.m.eng.Now()
		v.st.ThrottleNanos += now - op.start
		// The admission stall is a span stage: attribution charges it to
		// "qos-stall" so throttled tenants can see their own backpressure.
		v.m.tr.Mark(op.span, op.gateAt, now, obs.LayerVolume, obs.PhaseQoS, v.id, -1, -1)
		v.admit(op)
	}
	v.armGate()
}

// --- WFQ dispatch (the submission shim into the array) ---

// dispatch fills the bounded in-flight window from the WFQ backlog.
func (m *Manager) dispatch() {
	for m.inflight < m.cfg.maxInflight() {
		flow, ok := m.wfq.Pop()
		if !ok {
			return
		}
		v := m.byID[flow]
		op := v.ready[v.readyHead]
		v.ready[v.readyHead] = nil
		v.readyHead++
		m.inflight++
		if now := m.eng.Now(); now > op.admitAt {
			// Time spent backlogged in the fair queue or held by the
			// in-flight window: the volume layer's "queue" stage.
			m.tr.Mark(op.span, op.admitAt, now, obs.LayerVolume, obs.PhaseQueue, v.id, -1, -1)
		}
		m.issue(op)
	}
}

// issue submits one op to the array front end.
func (m *Manager) issue(op *vop) {
	if op.write {
		m.dev.Write(op.lba, op.nblocks, op.data, op.wfwd)
	} else {
		m.dev.Read(op.lba, op.nblocks, op.rfwd)
	}
}

// account folds a completion into the tenant stats and frees the
// in-flight slot.
func (op *vop) account() (m *Manager, v *Volume) {
	v = op.v
	m = v.m
	if !m.cfg.DisableQoS {
		m.inflight--
	}
	v.st.Ops++
	v.st.Bytes += uint64(op.cost)
	v.qd(-1)
	if m.tr != nil {
		m.tr.Counter(int64(m.eng.Now()), obs.ProbeKey(obs.ProbeTenantBytes, v.id, 0), int64(v.st.Bytes))
	}
	return m, v
}

func (op *vop) finishWrite(r blockdev.WriteResult) {
	m, _ := op.account()
	now := m.eng.Now()
	r.Latency = now - op.start // end-to-end: includes QoS queueing
	m.tr.SpanEnd(op.span, now, r.Err != nil)
	done := op.wdone
	m.putOp(op)
	if done != nil {
		done(r)
	}
	if !m.cfg.DisableQoS {
		m.dispatch()
	}
}

func (op *vop) finishRead(r blockdev.ReadResult) {
	m, _ := op.account()
	now := m.eng.Now()
	r.Latency = now - op.start
	m.tr.SpanEnd(op.span, now, r.Err != nil)
	done := op.rdone
	m.putOp(op)
	if done != nil {
		done(r)
	}
	if !m.cfg.DisableQoS {
		m.dispatch()
	}
}
