// Package dmzap implements the dm-zap block-to-ZNS adapter the paper uses
// as its compatibility baseline (§2.3): a host-side translation layer that
// maps logical block addresses to (zone, offset) pairs, appends incoming
// blocks to open zones, and garbage-collects full zones.
//
// Two deliberate weaknesses of the real dm-zap are reproduced faithfully,
// because the paper's analysis hinges on them:
//
//   - one in-flight write per zone, enforced with a (modeled) spin lock:
//     writes to a busy zone wait for the previous completion, wasting both
//     intra-zone parallelism (Fig. 5) and host CPU (Fig. 17);
//   - lifetime-oblivious placement: blocks are appended round-robin to
//     whichever zone is open, muddling hot and cold data in the same zones
//     and inflating GC migration (§2.3's 33-55% extra flash writes).
//
// Per §5.1 the adapter is "revised to write all open zones in parallel"
// (the original used a single zone); Config.OpenZones controls the fan-out.
package dmzap

import (
	"fmt"

	"biza/internal/blockdev"
	"biza/internal/cpumodel"
	"biza/internal/metrics"
	"biza/internal/sim"
	"biza/internal/zns"
	"biza/internal/zoneapi"
)

// Config tunes the adapter.
type Config struct {
	// OpenZones is how many zones accept writes in parallel.
	OpenZones int
	// GCLowWater / GCHighWater are free-zone watermarks.
	GCLowWater  int
	GCHighWater int
	// OverProvisionZones are zones withheld from logical capacity so GC
	// always has headroom.
	OverProvisionZones int
}

// DefaultConfig sizes the adapter for a backend with the given zone count
// and open-zone limit.
func DefaultConfig(zones, maxOpen int) Config {
	op := zones / 8
	if op < 4 {
		op = 4
	}
	low := op/2 + 1
	if low < 3 {
		low = 3
	}
	high := op - 1
	if high <= low {
		high = low + 1
	}
	// Open-zone budget: each ring zone can briefly coexist with its
	// draining predecessor when it fills (and the whole ring fills nearly
	// simultaneously under round-robin placement), and the GC zone has the
	// same retirement transient — so the ring gets (maxOpen-2)/2 slots.
	openZones := (maxOpen - 2) / 2
	if openZones < 1 {
		openZones = 1
	}
	return Config{
		OpenZones:          openZones,
		GCLowWater:         low,
		GCHighWater:        high,
		OverProvisionZones: op,
	}
}

type zoneState uint8

const (
	zsFree zoneState = iota
	zsOpen
	zsFull
)

type loc struct {
	zone int
	off  int64
}

type pending struct {
	lba      int64
	off      int64 // zone offset assigned at enqueue (FIFO per zone)
	data     []byte
	tag      zns.WriteTag
	enqueued sim.Time
	done     func(zns.WriteResult)
}

type zoneInfo struct {
	state zoneState
	wp    int64
	valid int64
	rmap  []int64 // offset -> lba, -1 invalid
	busy  bool    // one in-flight write
	queue []pending
}

// Adapter exposes a block device over a zoned backend. It implements
// blockdev.Device.
type Adapter struct {
	cfg     Config
	backend zoneapi.Backend
	eng     *sim.Engine
	acct    *cpumodel.Accountant

	l2z       []loc
	zones     []zoneInfo
	openRing  []int
	gcZone    int // dedicated GC destination zone (separate from the ring)
	rr        int
	freeZones []int
	gcRunning bool
	stalled   []pending // user writes parked at the free-zone cliff

	storesData bool // backend retains payloads (cached at New)

	userBytes     uint64
	migratedBytes uint64
	gcEvents      uint64
	writeErrs     map[string]int
}

// New builds an adapter over backend. acct may be nil.
func New(backend zoneapi.Backend, cfg Config, acct *cpumodel.Accountant) (*Adapter, error) {
	zones := backend.Zones()
	if cfg.OpenZones < 1 || cfg.OpenZones > backend.MaxOpenZones() {
		return nil, fmt.Errorf("dmzap: OpenZones %d outside [1,%d]", cfg.OpenZones, backend.MaxOpenZones())
	}
	if cfg.OverProvisionZones < 1 || cfg.OverProvisionZones >= zones {
		return nil, fmt.Errorf("dmzap: OverProvisionZones %d with %d zones", cfg.OverProvisionZones, zones)
	}
	if cfg.GCLowWater < 1 || cfg.GCHighWater <= cfg.GCLowWater {
		return nil, fmt.Errorf("dmzap: bad GC watermarks %d/%d", cfg.GCLowWater, cfg.GCHighWater)
	}
	if acct == nil {
		acct = &cpumodel.Accountant{}
	}
	logicalBlocks := int64(zones-cfg.OverProvisionZones) * backend.ZoneBlocks()
	a := &Adapter{
		cfg:        cfg,
		backend:    backend,
		eng:        backend.Engine(),
		acct:       acct,
		l2z:        make([]loc, logicalBlocks),
		zones:      make([]zoneInfo, zones),
		writeErrs:  make(map[string]int),
		storesData: zoneapi.StoresData(backend),
	}
	for i := range a.l2z {
		a.l2z[i] = loc{zone: -1}
	}
	for i := range a.zones {
		a.freeZones = append(a.freeZones, i)
	}
	for i := 0; i < cfg.OpenZones; i++ {
		a.openRing = append(a.openRing, a.takeFree())
	}
	a.gcZone = a.takeFree()
	return a, nil
}

// BlockSize implements blockdev.Device.
func (a *Adapter) BlockSize() int { return a.backend.BlockSize() }

// StoresData implements blockdev.DataStorer: reads return payloads only
// when the zoned backend retains them.
func (a *Adapter) StoresData() bool { return a.storesData }

// Blocks implements blockdev.Device.
func (a *Adapter) Blocks() int64 { return int64(len(a.l2z)) }

// GCEvents reports completed victim collections.
func (a *Adapter) GCEvents() uint64 { return a.gcEvents }

// WriteAmp reports adapter-level accounting: user bytes in versus user plus
// GC-migrated bytes pushed to the backend. Flash-level truth lives in the
// backend device counters.
func (a *Adapter) WriteAmp() metrics.WriteAmp {
	return metrics.WriteAmp{
		UserBytes:       a.userBytes,
		FlashDataBytes:  a.userBytes + a.migratedBytes,
		GCMigratedBytes: a.migratedBytes,
	}
}

// stallFloor is the free-zone count at which user writes park so GC keeps
// migration headroom (a collection can consume up to two zones before its
// victim's reset lands).
func (a *Adapter) stallFloor() int {
	f := a.cfg.GCLowWater / 2
	if f < 2 {
		f = 2
	}
	// The floor must sit strictly below the GC trigger, or writes park at
	// a level where collection never starts.
	if f >= a.cfg.GCLowWater {
		f = a.cfg.GCLowWater - 1
	}
	return f
}

func (a *Adapter) takeFree() int {
	if len(a.freeZones) == 0 {
		full, busyN, queued := 0, 0, 0
		for i := range a.zones {
			zi := &a.zones[i]
			if zi.state == zsFull {
				full++
				if zi.busy {
					busyN++
				}
				if len(zi.queue) > 0 {
					queued++
				}
			}
		}
		panic(fmt.Sprintf("dmzap: out of free zones — full=%d busy=%d queued=%d stalled=%d gc=%v victim=%d",
			full, busyN, queued, len(a.stalled), a.gcRunning, a.pickVictim()))
	}
	z := a.freeZones[0]
	a.freeZones = a.freeZones[1:]
	zi := &a.zones[z]
	zi.state = zsOpen
	zi.wp = 0
	zi.valid = 0
	if zi.rmap == nil {
		zi.rmap = make([]int64, a.backend.ZoneBlocks())
	}
	for i := range zi.rmap {
		zi.rmap[i] = -1
	}
	return z
}

// Write implements blockdev.Device: splits the request into blocks,
// appends each to the next open zone (round-robin), one in flight per zone.
func (a *Adapter) Write(lba int64, nblocks int, data []byte, done func(blockdev.WriteResult)) {
	start := a.eng.Now()
	if nblocks <= 0 || lba < 0 || lba+int64(nblocks) > a.Blocks() {
		if done != nil {
			a.eng.After(sim.Microsecond, func() {
				done(blockdev.WriteResult{Err: blockdev.ErrOutOfRange, Latency: a.eng.Now() - start})
			})
		}
		return
	}
	bs := int64(a.BlockSize())
	a.userBytes += uint64(nblocks) * uint64(bs)
	remaining := nblocks
	var firstErr error
	for i := 0; i < nblocks; i++ {
		var payload []byte
		if data != nil {
			payload = data[int64(i)*bs : int64(i+1)*bs]
		}
		a.writeBlock(lba+int64(i), payload, zns.TagUserData, func(r zns.WriteResult) {
			if r.Err != nil && firstErr == nil {
				firstErr = r.Err
			}
			remaining--
			if remaining == 0 && done != nil {
				done(blockdev.WriteResult{Err: firstErr, Latency: a.eng.Now() - start})
			}
		})
	}
}

// writeBlock appends one block to an open zone and updates the mapping on
// completion. User writes stall at the free-zone cliff so GC migration
// always has zones to move data into; GC's own writes bypass the stall.
func (a *Adapter) writeBlock(lba int64, data []byte, tag zns.WriteTag, done func(zns.WriteResult)) {
	if tag == zns.TagUserData && len(a.freeZones) <= a.stallFloor() && a.pickVictim() >= 0 {
		a.stalled = append(a.stalled, pending{lba: lba, data: data, tag: tag, enqueued: a.eng.Now(), done: done})
		a.maybeStartGC()
		return
	}
	a.acct.Charge(cpumodel.CompDmzap, cpumodel.CostMapUpdate)
	a.acct.Charge(cpumodel.CompIO, cpumodel.CostSubmission)
	var z int
	if tag == zns.TagGCData {
		// Migration writes fill the dedicated GC zone so one collection
		// can retire at most one fresh zone, keeping reclaim net-positive.
		if a.zones[a.gcZone].wp >= a.backend.ZoneBlocks() {
			a.zones[a.gcZone].state = zsFull
			a.gcZone = a.takeFree()
		}
		z = a.gcZone
	} else {
		z = a.pickZone()
	}
	zi := &a.zones[z]
	off := zi.wp
	zi.wp++
	// Install the mapping immediately (dm-zap updates its table before
	// submission; the serialized dispatch makes this safe).
	if old := a.l2z[lba]; old.zone >= 0 {
		ozi := &a.zones[old.zone]
		if ozi.rmap[old.off] == lba {
			ozi.rmap[old.off] = -1
			ozi.valid--
		}
	}
	a.l2z[lba] = loc{zone: z, off: off}
	zi.rmap[off] = lba
	zi.valid++
	if zi.wp >= a.backend.ZoneBlocks() && z != a.gcZone {
		a.retireZone(z)
	}
	a.dispatch(z, pending{lba: lba, off: off, data: data, tag: tag, enqueued: a.eng.Now(), done: done})
}

// pickZone returns the next open zone in round-robin order.
func (a *Adapter) pickZone() int {
	z := a.openRing[a.rr%len(a.openRing)]
	a.rr++
	return z
}

// retireZone replaces a filled zone in the open ring with a fresh one.
func (a *Adapter) retireZone(z int) {
	a.zones[z].state = zsFull
	for i, oz := range a.openRing {
		if oz == z {
			a.openRing[i] = a.takeFree()
			break
		}
	}
	a.maybeStartGC()
}

// dispatch enforces the one-in-flight-per-zone rule. Waiting time is
// charged to the dm-zap component as spin-lock CPU, matching §5.7's
// finding that the lock dominates dm-zap's CPU cost.
func (a *Adapter) dispatch(z int, p pending) {
	zi := &a.zones[z]
	if zi.busy {
		zi.queue = append(zi.queue, p)
		return
	}
	zi.busy = true
	a.submit(z, p)
}

func (a *Adapter) submit(z int, p pending) {
	zi := &a.zones[z]
	if wait := a.eng.Now() - p.enqueued; wait > 0 {
		// The real adapter spins while the zone lock is held.
		a.acct.Charge(cpumodel.CompDmzap, wait)
	}
	// The offset was assigned at enqueue time in FIFO order, so delivery
	// order equals offset order; with one write in flight the sequential
	// rule cannot be violated. A block superseded while queued still writes
	// its reserved offset (keeping the zone sequential); the mapping table
	// already points at the newer copy.
	a.backend.Write(z, p.off, 1, p.data, p.tag, func(r zns.WriteResult) {
		if r.Err != nil {
			a.writeErrs[r.Err.Error()]++
		}
		if p.done != nil {
			p.done(r)
		}
		if len(zi.queue) > 0 {
			next := zi.queue[0]
			zi.queue = zi.queue[1:]
			a.submit(z, next)
			return
		}
		zi.busy = false
	})
}

// Read implements blockdev.Device, splitting across zones as needed and
// coalescing contiguous runs within one zone.
func (a *Adapter) Read(lba int64, nblocks int, done func(blockdev.ReadResult)) {
	start := a.eng.Now()
	if nblocks <= 0 || lba < 0 || lba+int64(nblocks) > a.Blocks() {
		if done != nil {
			a.eng.After(sim.Microsecond, func() {
				done(blockdev.ReadResult{Err: blockdev.ErrOutOfRange, Latency: a.eng.Now() - start})
			})
		}
		return
	}
	bs := int64(a.BlockSize())
	var buf []byte
	if a.storesData {
		buf = make([]byte, int64(nblocks)*bs)
	}
	remaining := 0
	var firstErr error
	finishOne := func() {
		remaining--
		if remaining == 0 && done != nil {
			done(blockdev.ReadResult{Err: firstErr, Data: buf, Latency: a.eng.Now() - start})
		}
	}
	// Build contiguous (zone, offset) runs.
	type run struct {
		zone    int
		off     int64
		blocks  int
		bufBase int64
	}
	var runs []run
	for i := 0; i < nblocks; i++ {
		l := a.l2z[lba+int64(i)]
		if l.zone < 0 {
			continue // unmapped reads as zeros
		}
		if len(runs) > 0 {
			last := &runs[len(runs)-1]
			if last.zone == l.zone && last.off+int64(last.blocks) == l.off &&
				last.bufBase+int64(last.blocks)*bs == int64(i)*bs {
				last.blocks++
				continue
			}
		}
		runs = append(runs, run{zone: l.zone, off: l.off, blocks: 1, bufBase: int64(i) * bs})
	}
	if len(runs) == 0 {
		if done != nil {
			a.eng.After(sim.Microsecond, func() {
				done(blockdev.ReadResult{Data: buf, Latency: a.eng.Now() - start})
			})
		}
		return
	}
	remaining = len(runs)
	for _, r := range runs {
		r := r
		a.acct.Charge(cpumodel.CompIO, cpumodel.CostSubmission)
		a.backend.Read(r.zone, r.off, r.blocks, func(res zns.ReadResult) {
			if res.Err != nil && firstErr == nil {
				firstErr = res.Err
			}
			if res.Data != nil {
				copy(buf[r.bufBase:], res.Data)
			}
			finishOne()
		})
	}
}

// Trim implements blockdev.Device.
func (a *Adapter) Trim(lba int64, nblocks int) {
	for i := int64(0); i < int64(nblocks); i++ {
		l := a.l2z[lba+i]
		if l.zone < 0 {
			continue
		}
		zi := &a.zones[l.zone]
		if zi.rmap[l.off] == lba+i {
			zi.rmap[l.off] = -1
			zi.valid--
		}
		a.l2z[lba+i] = loc{zone: -1}
	}
}

// maybeStartGC launches the collector below the low watermark, or
// whenever user writes are parked at the cliff.
func (a *Adapter) maybeStartGC() {
	if a.gcRunning {
		return
	}
	if len(a.freeZones) >= a.cfg.GCLowWater && len(a.stalled) == 0 {
		return
	}
	a.gcRunning = true
	a.eng.After(0, a.gcStep)
}

// gcStep migrates the valid blocks of the fullest-invalid zone through the
// normal write path — interfering with user I/O exactly as the paper
// complains — then resets the victim.
func (a *Adapter) gcStep() {
	if len(a.freeZones) >= a.cfg.GCHighWater && len(a.stalled) == 0 {
		a.gcRunning = false
		return
	}
	victim := a.pickVictim()
	if victim < 0 {
		a.gcRunning = false
		return
	}
	a.gcEvents++
	zi := &a.zones[victim]
	var lbas []int64
	for off := int64(0); off < zi.wp; off++ {
		if l := zi.rmap[off]; l >= 0 {
			lbas = append(lbas, l)
		}
	}
	finish := func() {
		a.backend.Reset(victim, func(error) {
			zi.state = zsFree
			zi.wp = 0
			a.freeZones = append(a.freeZones, victim)
			for len(a.stalled) > 0 && (len(a.freeZones) > a.stallFloor() || a.pickVictim() < 0) {
				p := a.stalled[0]
				a.stalled = a.stalled[1:]
				a.writeBlock(p.lba, p.data, p.tag, p.done)
			}
			a.eng.After(0, a.gcStep)
		})
	}
	if len(lbas) == 0 {
		finish()
		return
	}
	remaining := len(lbas)
	bs := int64(a.BlockSize())
	for _, l := range lbas {
		l := l
		cur := a.l2z[l]
		if cur.zone != victim {
			// Overwritten since scan; nothing to move.
			remaining--
			if remaining == 0 {
				finish()
			}
			continue
		}
		a.backend.Read(victim, cur.off, 1, func(res zns.ReadResult) {
			// Re-check: a user write may have superseded this block while
			// the read was in flight; migrating then would resurrect stale
			// data over the newer copy.
			if a.l2z[l] != cur {
				remaining--
				if remaining == 0 {
					finish()
				}
				return
			}
			a.migratedBytes += uint64(bs)
			a.writeBlock(l, res.Data, zns.TagGCData, func(zns.WriteResult) {
				remaining--
				if remaining == 0 {
					finish()
				}
			})
		})
	}
}

// pickVictim returns the full zone with the fewest valid blocks. Zones
// with writes still queued or in flight are not collectible: migrating
// them would read stale data and the reset would race the tail writes.
func (a *Adapter) pickVictim() int {
	best, bestValid := -1, int64(1)<<62
	for i := range a.zones {
		zi := &a.zones[i]
		if zi.state != zsFull || zi.busy || len(zi.queue) > 0 {
			continue
		}
		if zi.valid < bestValid {
			best, bestValid = i, zi.valid
		}
	}
	return best
}

// ResetAccounting zeroes adapter-level traffic counters.
func (a *Adapter) ResetAccounting() {
	a.userBytes, a.migratedBytes, a.gcEvents = 0, 0, 0
}

// WriteErrs reports device write errors by message (diagnostics).
func (a *Adapter) WriteErrs() map[string]int { return a.writeErrs }

// Diagnostics reports internal queue states (tests).
func (a *Adapter) Diagnostics() (stalled, freeZones int, gcRunning bool, queued int) {
	for i := range a.zones {
		queued += len(a.zones[i].queue)
	}
	return len(a.stalled), len(a.freeZones), a.gcRunning, queued
}
