package dmzap

import (
	"bytes"
	"errors"
	"testing"

	"biza/internal/blockdev"
	"biza/internal/cpumodel"
	"biza/internal/nvme"
	"biza/internal/sim"
	"biza/internal/zns"
	"biza/internal/zoneapi"
)

func newAdapter(t *testing.T) (*sim.Engine, *Adapter, *zns.Device, *cpumodel.Accountant) {
	t.Helper()
	eng := sim.NewEngine()
	dev, err := zns.New(eng, zns.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	q := nvme.New(dev, nvme.Config{ReorderWindow: 5 * sim.Microsecond, Seed: 7})
	backend := zoneapi.SingleDevice{Q: q}
	acct := &cpumodel.Accountant{}
	a, err := New(backend, DefaultConfig(backend.Zones(), backend.MaxOpenZones()), acct)
	if err != nil {
		t.Fatal(err)
	}
	return eng, a, dev, acct
}

func wsync(eng *sim.Engine, a *Adapter, lba int64, n int, data []byte) blockdev.WriteResult {
	var res blockdev.WriteResult
	ok := false
	a.Write(lba, n, data, func(r blockdev.WriteResult) { res = r; ok = true })
	eng.Run()
	if !ok {
		panic("write hung")
	}
	return res
}

func rsync(eng *sim.Engine, a *Adapter, lba int64, n int) blockdev.ReadResult {
	var res blockdev.ReadResult
	ok := false
	a.Read(lba, n, func(r blockdev.ReadResult) { res = r; ok = true })
	eng.Run()
	if !ok {
		panic("read hung")
	}
	return res
}

func pat(seed byte, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed ^ byte(i*11)
	}
	return b
}

func TestConfigValidation(t *testing.T) {
	eng := sim.NewEngine()
	dev, _ := zns.New(eng, zns.TestConfig())
	backend := zoneapi.SingleDevice{Q: nvme.New(dev, nvme.Config{})}
	for _, bad := range []Config{
		{OpenZones: 0, GCLowWater: 1, GCHighWater: 2, OverProvisionZones: 2},
		{OpenZones: 100, GCLowWater: 1, GCHighWater: 2, OverProvisionZones: 2},
		{OpenZones: 2, GCLowWater: 2, GCHighWater: 2, OverProvisionZones: 2},
		{OpenZones: 2, GCLowWater: 1, GCHighWater: 2, OverProvisionZones: 0},
	} {
		if _, err := New(backend, bad, nil); err == nil {
			t.Fatalf("accepted bad config %+v", bad)
		}
	}
}

func TestRandomWriteReadRoundTrip(t *testing.T) {
	eng, a, _, _ := newAdapter(t)
	// Random (non-sequential) LBAs — the whole point of the adapter.
	lbas := []int64{100, 5, 999, 42, 0, 512}
	for i, lba := range lbas {
		if r := wsync(eng, a, lba, 1, pat(byte(i+1), 4096)); r.Err != nil {
			t.Fatalf("write %d: %v", lba, r.Err)
		}
	}
	for i, lba := range lbas {
		r := rsync(eng, a, lba, 1)
		if r.Err != nil || !bytes.Equal(r.Data, pat(byte(i+1), 4096)) {
			t.Fatalf("read %d mismatch (err=%v)", lba, r.Err)
		}
	}
}

func TestOverwriteVisibility(t *testing.T) {
	eng, a, _, _ := newAdapter(t)
	for i := 0; i < 5; i++ {
		wsync(eng, a, 7, 1, pat(byte(i), 4096))
	}
	r := rsync(eng, a, 7, 1)
	if !bytes.Equal(r.Data, pat(4, 4096)) {
		t.Fatal("stale data after overwrites")
	}
}

func TestMultiBlockWriteSplit(t *testing.T) {
	eng, a, _, _ := newAdapter(t)
	payload := pat(9, 16*4096)
	if r := wsync(eng, a, 50, 16, payload); r.Err != nil {
		t.Fatal(r.Err)
	}
	r := rsync(eng, a, 50, 16)
	if !bytes.Equal(r.Data, payload) {
		t.Fatal("multi-block round trip mismatch")
	}
}

func TestUnmappedReadsZero(t *testing.T) {
	eng, a, _, _ := newAdapter(t)
	r := rsync(eng, a, 123, 2)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	for _, b := range r.Data {
		if b != 0 {
			t.Fatal("unmapped read not zero")
		}
	}
}

func TestOutOfRangeRejected(t *testing.T) {
	eng, a, _, _ := newAdapter(t)
	if r := wsync(eng, a, a.Blocks(), 1, nil); !errors.Is(r.Err, blockdev.ErrOutOfRange) {
		t.Fatalf("err = %v", r.Err)
	}
}

func TestOneInFlightPerZoneNoReorderFailures(t *testing.T) {
	// Heavy concurrent writes through a reordering queue: the adapter's
	// serialization must prevent any ErrNotSequential failures.
	eng, a, _, _ := newAdapter(t)
	var failures int
	outstanding := 0
	for i := 0; i < 500; i++ {
		outstanding++
		a.Write(int64(i%200), 1, nil, func(r blockdev.WriteResult) {
			if r.Err != nil {
				failures++
			}
			outstanding--
		})
	}
	eng.Run()
	if outstanding != 0 {
		t.Fatalf("%d writes hung", outstanding)
	}
	if failures != 0 {
		t.Fatalf("%d write failures despite serialization", failures)
	}
}

func TestSpinLockCPUCharged(t *testing.T) {
	eng, a, _, acct := newAdapter(t)
	// Concurrent writes force queueing behind the per-zone lock.
	for i := 0; i < 200; i++ {
		a.Write(int64(i), 1, nil, nil)
	}
	eng.Run()
	if acct.Ticks(cpumodel.CompDmzap) == 0 {
		t.Fatal("no CPU charged to dmzap component")
	}
}

func TestGCReclaimsAndPreservesData(t *testing.T) {
	eng, a, _, _ := newAdapter(t)
	// Working set ~40% of logical space, overwritten repeatedly: forces GC.
	span := a.Blocks() * 2 / 5
	rng := sim.NewRNG(3)
	for i := 0; i < int(span)*6; i++ {
		lba := rng.Int63n(span)
		wsync(eng, a, lba, 1, pat(byte(lba), 4096))
	}
	eng.Run()
	if a.GCEvents() == 0 {
		t.Fatal("GC never ran")
	}
	// All data must survive migration.
	for lba := int64(0); lba < span; lba += 17 {
		r := rsync(eng, a, lba, 1)
		if r.Err != nil {
			t.Fatalf("read %d after GC: %v", lba, r.Err)
		}
		if r.Data[0] != (pat(byte(lba), 4096))[0] {
			t.Fatalf("data corrupted by GC at %d", lba)
		}
	}
	wa := a.WriteAmp()
	if wa.Factor() <= 1.0 {
		t.Fatalf("WA = %.2f after forced GC, want > 1", wa.Factor())
	}
}

func TestTrimPreventsMigration(t *testing.T) {
	eng, a, _, _ := newAdapter(t)
	span := a.Blocks() / 2
	for round := 0; round < 4; round++ {
		for lba := int64(0); lba < span; lba++ {
			wsync(eng, a, lba, 1, nil)
		}
		a.Trim(0, int(span))
	}
	eng.Run()
	wa := a.WriteAmp()
	if wa.GCMigratedBytes > wa.UserBytes/10 {
		t.Fatalf("GC migrated %d bytes of trimmed data (user %d)", wa.GCMigratedBytes, wa.UserBytes)
	}
}

func TestFlashAccountingMatchesBackend(t *testing.T) {
	eng, a, dev, _ := newAdapter(t)
	for i := 0; i < 64; i++ {
		wsync(eng, a, int64(i), 1, nil)
	}
	// Flush open zones so every block reaches flash.
	eng.Run()
	st := dev.Stats()
	if st.ProgrammedByTag(zns.TagUserData) == 0 {
		t.Fatal("no user bytes reached flash")
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (uint64, uint64) {
		eng, a, _, _ := newAdapter(t)
		rng := sim.NewRNG(21)
		for i := 0; i < 1500; i++ {
			wsync(eng, a, rng.Int63n(a.Blocks()/3), 1, nil)
		}
		eng.Run()
		wa := a.WriteAmp()
		return wa.FlashDataBytes, a.GCEvents()
	}
	a1, g1 := run()
	a2, g2 := run()
	if a1 != a2 || g1 != g2 {
		t.Fatalf("replay diverged: %d/%d vs %d/%d", a1, g1, a2, g2)
	}
}
