// Package kvstore implements a small LSM-tree key-value store in the
// RocksDB mold (§5.3's second application): write-ahead log, in-memory
// memtable, sorted-run SSTable files flushed to a log-structured
// filesystem, and leveled compaction. Its I/O profile — sequential SSTable
// and WAL writes plus compaction rewrites — is what db_bench exercises on
// the paper's F2FS + AFA stack.
package kvstore

import (
	"errors"
	"fmt"
	"sort"

	"biza/internal/lsfs"
	"biza/internal/sim"
)

// Config tunes the store.
type Config struct {
	// MemtableBytes triggers a flush when the memtable reaches this size.
	MemtableBytes int64
	// L0Files triggers compaction into L1 when level 0 holds this many
	// tables.
	L0Files int
	// BlockBytes is the SSTable block size (device block).
	BlockBytes int
}

// DefaultConfig returns sizes suitable for simulation scale.
func DefaultConfig() Config {
	return Config{MemtableBytes: 256 << 10, L0Files: 4, BlockBytes: 4096}
}

type entry struct {
	key   string
	value []byte
}

type sstable struct {
	id      int
	fileID  int
	entries []entry // sorted by key; values retained for correctness
	blocks  int64
}

func (s *sstable) min() string { return s.entries[0].key }
func (s *sstable) max() string { return s.entries[len(s.entries)-1].key }

// find returns the entry index holding key, or -1.
func (s *sstable) find(key string) int {
	i := sort.Search(len(s.entries), func(i int) bool { return s.entries[i].key >= key })
	if i < len(s.entries) && s.entries[i].key == key {
		return i
	}
	return -1
}

// DB is the store instance.
type DB struct {
	cfg Config
	fs  *lsfs.FS
	eng *sim.Engine

	mem      map[string][]byte
	memBytes int64

	walID     int
	walBlocks int64

	levels  [][]*sstable // levels[0] newest-first; levels[1] sorted runs
	nextSST int

	compacting bool

	puts, gets, flushes, compactions uint64
	bytesFlushed, bytesCompacted     uint64
}

// ErrNotFound reports a missing key.
var ErrNotFound = errors.New("kvstore: key not found")

// Open creates a store on the filesystem.
func Open(eng *sim.Engine, fs *lsfs.FS, cfg Config) (*DB, error) {
	if cfg.MemtableBytes < 4096 || cfg.L0Files < 2 || cfg.BlockBytes < 512 {
		return nil, fmt.Errorf("kvstore: bad config %+v", cfg)
	}
	walID, err := fs.Create("WAL")
	if err != nil {
		return nil, err
	}
	return &DB{
		cfg:    cfg,
		fs:     fs,
		eng:    eng,
		mem:    make(map[string][]byte),
		walID:  walID,
		levels: make([][]*sstable, 2),
	}, nil
}

// Stats reports operation and flush/compaction counters.
func (db *DB) Stats() (puts, gets, flushes, compactions uint64) {
	return db.puts, db.gets, db.flushes, db.compactions
}

// WriteAmpBytes reports flush and compaction volume.
func (db *DB) WriteAmpBytes() (flushed, compacted uint64) {
	return db.bytesFlushed, db.bytesCompacted
}

// Put stores a key-value pair; done fires after the WAL write is durable.
func (db *DB) Put(key string, value []byte, done func(error)) {
	db.puts++
	db.mem[key] = append([]byte(nil), value...)
	db.memBytes += int64(len(key) + len(value))
	// WAL append: one block per record (small records share a block in
	// reality; one block is the conservative crash-consistency cost).
	wb := db.walBlocks
	db.walBlocks++
	db.fs.WriteFile(db.walID, wb, 1, func(err error) {
		if db.memBytes >= db.cfg.MemtableBytes {
			db.flush()
		}
		if done != nil {
			done(err)
		}
	})
}

// Get fetches a key: memtable first, then levels newest-first. The lookup
// performs one block read per consulted table (index-directed).
func (db *DB) Get(key string, done func([]byte, error)) {
	db.gets++
	if v, ok := db.mem[key]; ok {
		db.eng.After(sim.Microsecond, func() { done(append([]byte(nil), v...), nil) })
		return
	}
	var tables []*sstable
	for _, lvl := range db.levels {
		tables = append(tables, lvl...)
	}
	var step func(i int)
	step = func(i int) {
		if i >= len(tables) {
			done(nil, ErrNotFound)
			return
		}
		t := tables[i]
		if len(t.entries) == 0 || key < t.min() || key > t.max() {
			step(i + 1)
			return
		}
		idx := t.find(key)
		if idx < 0 {
			step(i + 1)
			return
		}
		// One data-block read at the key's position.
		blk := int64(idx) * int64(len(t.entries)) / maxI64(t.blocks, 1)
		_ = blk
		pos := int64(idx) % maxI64(t.blocks, 1)
		db.fs.ReadFile(t.fileID, pos, 1, func(err error) {
			if err != nil {
				done(nil, err)
				return
			}
			done(append([]byte(nil), t.entries[idx].value...), nil)
		})
	}
	step(0)
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Seek positions at the first key >= key and returns it (fillseekseq's
// operation), reading one index block.
func (db *DB) Seek(key string, done func(string, []byte, error)) {
	// Best candidate across memtable and tables.
	bestKey := ""
	var bestVal []byte
	consider := func(k string, v []byte) {
		if k < key {
			return
		}
		if bestKey == "" || k < bestKey {
			bestKey, bestVal = k, v
		}
	}
	for k, v := range db.mem {
		consider(k, v)
	}
	var readTables []*sstable
	for _, lvl := range db.levels {
		for _, t := range lvl {
			if len(t.entries) == 0 || t.max() < key {
				continue
			}
			i := sort.Search(len(t.entries), func(i int) bool { return t.entries[i].key >= key })
			if i < len(t.entries) {
				consider(t.entries[i].key, t.entries[i].value)
				readTables = append(readTables, t)
			}
		}
	}
	if bestKey == "" {
		db.eng.After(sim.Microsecond, func() { done("", nil, ErrNotFound) })
		return
	}
	if len(readTables) == 0 {
		db.eng.After(sim.Microsecond, func() { done(bestKey, bestVal, nil) })
		return
	}
	remaining := len(readTables)
	for _, t := range readTables {
		db.fs.ReadFile(t.fileID, 0, 1, func(error) {
			remaining--
			if remaining == 0 {
				done(bestKey, bestVal, nil)
			}
		})
	}
}

// flush writes the memtable as a new L0 SSTable and truncates the WAL.
func (db *DB) flush() {
	if len(db.mem) == 0 {
		return
	}
	db.flushes++
	entries := make([]entry, 0, len(db.mem))
	var bytes int64
	for k, v := range db.mem {
		entries = append(entries, entry{key: k, value: v})
		bytes += int64(len(k) + len(v))
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })
	db.mem = make(map[string][]byte)
	db.memBytes = 0
	t := db.writeTable(entries, bytes)
	db.levels[0] = append([]*sstable{t}, db.levels[0]...)
	// WAL truncation: delete and recreate.
	db.fs.Delete(db.walID)
	id, err := db.fs.Create(fmt.Sprintf("WAL-%d", db.nextSST))
	if err == nil {
		db.walID = id
		db.walBlocks = 0
	}
	if len(db.levels[0]) > db.cfg.L0Files {
		db.compact()
	}
}

// writeTable persists a sorted run as an SSTable file.
func (db *DB) writeTable(entries []entry, bytes int64) *sstable {
	db.nextSST++
	blocks := (bytes + int64(db.cfg.BlockBytes) - 1) / int64(db.cfg.BlockBytes)
	if blocks < 1 {
		blocks = 1
	}
	fileID, err := db.fs.Create(fmt.Sprintf("sst-%06d", db.nextSST))
	if err != nil {
		panic(fmt.Sprintf("kvstore: create sstable: %v", err))
	}
	db.fs.WriteFile(fileID, 0, int(blocks), nil)
	db.bytesFlushed += uint64(blocks) * uint64(db.cfg.BlockBytes)
	return &sstable{id: db.nextSST, fileID: fileID, entries: entries, blocks: blocks}
}

// compact merges all of L0 and L1 into a fresh L1 run: reads every input
// block, writes the merged output, deletes the inputs — the classic LSM
// write amplification.
func (db *DB) compact() {
	if db.compacting {
		return
	}
	db.compacting = true
	db.compactions++
	inputs := append(append([]*sstable{}, db.levels[0]...), db.levels[1]...)
	// Merge newest-first so fresher values win.
	merged := make(map[string][]byte)
	for i := len(inputs) - 1; i >= 0; i-- {
		for _, e := range inputs[i].entries {
			merged[e.key] = e.value
		}
	}
	entries := make([]entry, 0, len(merged))
	var bytes int64
	for k, v := range merged {
		entries = append(entries, entry{key: k, value: v})
		bytes += int64(len(k) + len(v))
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })

	// Read all input blocks (compaction read traffic), then write output.
	remaining := 0
	finishReads := func() {
		remaining--
		if remaining > 0 {
			return
		}
		out := db.writeTable(entries, bytes)
		db.bytesCompacted += uint64(out.blocks) * uint64(db.cfg.BlockBytes)
		for _, in := range inputs {
			db.fs.Delete(in.fileID)
		}
		db.levels[0] = nil
		db.levels[1] = []*sstable{out}
		db.compacting = false
	}
	remaining = len(inputs)
	if remaining == 0 {
		db.compacting = false
		return
	}
	for _, in := range inputs {
		in := in
		db.fs.ReadFile(in.fileID, 0, int(in.blocks), func(error) { finishReads() })
	}
}
