package kvstore

import (
	"fmt"

	"biza/internal/sim"
)

// BenchSpec is a db_bench-like workload (§5.3: fillseq, fillrandom,
// fillseekseq with 16 B keys and 1 KiB values).
type BenchSpec struct {
	Name      string
	Ops       int
	KeyBytes  int
	ValueB    int
	RandomKey bool
	SeekPhase bool // fill sequentially, then seek every key in order
	Depth     int
	Seed      uint64
}

// DefaultBench returns the paper's db_bench parameters for a workload name
// (fillseq, fillrandom, fillseekseq).
func DefaultBench(name string, ops int) (BenchSpec, error) {
	spec := BenchSpec{Name: name, Ops: ops, KeyBytes: 16, ValueB: 1024, Depth: 8, Seed: 99}
	switch name {
	case "fillseq":
	case "fillrandom":
		spec.RandomKey = true
	case "fillseekseq":
		spec.SeekPhase = true
	default:
		return spec, fmt.Errorf("kvstore: unknown benchmark %q", name)
	}
	return spec, nil
}

// BenchResult reports a run.
type BenchResult struct {
	Ops     uint64
	Errors  uint64
	Elapsed sim.Time
}

// OpsPerSec reports the operation rate.
func (r BenchResult) OpsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / (float64(r.Elapsed) / 1e9)
}

// RunBench drives the spec against db with a closed loop.
func RunBench(eng *sim.Engine, db *DB, spec BenchSpec) BenchResult {
	rng := sim.NewRNG(spec.Seed ^ 0xdbbe)
	value := make([]byte, spec.ValueB)
	key := func(i int) string {
		n := i
		if spec.RandomKey {
			n = rng.Intn(spec.Ops * 4)
		}
		return fmt.Sprintf("%0*d", spec.KeyBytes, n)
	}
	res := BenchResult{}
	start := eng.Now()
	issued := 0
	var issue func()
	complete := func(err error) {
		if err != nil {
			res.Errors++
		} else {
			res.Ops++
		}
		issue()
	}
	issue = func() {
		if issued >= spec.Ops {
			return
		}
		i := issued
		issued++
		db.Put(key(i), value, complete)
	}
	depth := spec.Depth
	if depth < 1 {
		depth = 1
	}
	for i := 0; i < depth; i++ {
		issue()
	}
	eng.Run()

	if spec.SeekPhase {
		seekIssued := 0
		var seek func()
		seekDone := func(_ string, _ []byte, err error) {
			if err != nil {
				res.Errors++
			} else {
				res.Ops++
			}
			seek()
		}
		seek = func() {
			if seekIssued >= spec.Ops {
				return
			}
			i := seekIssued
			seekIssued++
			db.Seek(fmt.Sprintf("%0*d", spec.KeyBytes, i), seekDone)
		}
		for i := 0; i < depth; i++ {
			seek()
		}
		eng.Run()
	}
	res.Elapsed = eng.Now() - start
	return res
}

// RunReadRandom issues count random Gets over keys [0, keySpace) after a
// fill, reporting the rate — the classic db_bench readrandom extension.
func RunReadRandom(eng *sim.Engine, db *DB, keySpace, count, keyBytes, depth int, seed uint64) BenchResult {
	rng := sim.NewRNG(seed ^ 0x4ead)
	res := BenchResult{}
	start := eng.Now()
	issued := 0
	var issue func()
	issue = func() {
		if issued >= count {
			return
		}
		issued++
		k := fmt.Sprintf("%0*d", keyBytes, rng.Intn(keySpace))
		db.Get(k, func(_ []byte, err error) {
			if err != nil && err != ErrNotFound {
				res.Errors++
			} else {
				res.Ops++
			}
			issue()
		})
	}
	if depth < 1 {
		depth = 1
	}
	for i := 0; i < depth; i++ {
		issue()
	}
	eng.Run()
	res.Elapsed = eng.Now() - start
	return res
}
