package kvstore

import (
	"bytes"
	"fmt"
	"testing"

	"biza/internal/ftl"
	"biza/internal/lsfs"
	"biza/internal/sim"
)

func newDB(t *testing.T) (*sim.Engine, *DB) {
	t.Helper()
	eng := sim.NewEngine()
	fc := ftl.TestConfig()
	fc.FlashBlocks = 512
	fc.GCLowWater = 8
	fc.GCHighWater = 16
	fc.StoreData = false
	dev, err := ftl.New(eng, fc)
	if err != nil {
		t.Fatal(err)
	}
	fcfg := lsfs.DefaultConfig()
	fcfg.MetaBlocks = 256
	fcfg.SegmentBlocks = 128
	fs, err := lsfs.New(eng, dev, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.MemtableBytes = 32 << 10
	db, err := Open(eng, fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, db
}

func put(eng *sim.Engine, db *DB, k string, v []byte) error {
	var res error
	ok := false
	db.Put(k, v, func(err error) { res = err; ok = true })
	eng.Run()
	if !ok {
		panic("put hung")
	}
	return res
}

func get(eng *sim.Engine, db *DB, k string) ([]byte, error) {
	var v []byte
	var res error
	ok := false
	db.Get(k, func(val []byte, err error) { v, res = val, err; ok = true })
	eng.Run()
	if !ok {
		panic("get hung")
	}
	return v, res
}

func TestPutGetRoundTrip(t *testing.T) {
	eng, db := newDB(t)
	if err := put(eng, db, "alpha", []byte("one")); err != nil {
		t.Fatal(err)
	}
	v, err := get(eng, db, "alpha")
	if err != nil || !bytes.Equal(v, []byte("one")) {
		t.Fatalf("get: %q %v", v, err)
	}
	if _, err := get(eng, db, "missing"); err != ErrNotFound {
		t.Fatalf("missing key err = %v", err)
	}
}

func TestOverwriteLatestWins(t *testing.T) {
	eng, db := newDB(t)
	put(eng, db, "k", []byte("v1"))
	put(eng, db, "k", []byte("v2"))
	v, _ := get(eng, db, "k")
	if !bytes.Equal(v, []byte("v2")) {
		t.Fatalf("got %q", v)
	}
}

func TestFlushAndReadFromSSTable(t *testing.T) {
	eng, db := newDB(t)
	// Exceed the 32 KiB memtable to force flushes.
	for i := 0; i < 100; i++ {
		put(eng, db, fmt.Sprintf("key-%03d", i), bytes.Repeat([]byte{byte(i)}, 512))
	}
	_, _, flushes, _ := db.Stats()
	if flushes == 0 {
		t.Fatal("no flush despite memtable overflow")
	}
	// All keys still readable (from memtable or tables).
	for i := 0; i < 100; i += 7 {
		v, err := get(eng, db, fmt.Sprintf("key-%03d", i))
		if err != nil {
			t.Fatalf("key %d: %v", i, err)
		}
		if len(v) != 512 || v[0] != byte(i) {
			t.Fatalf("key %d value wrong", i)
		}
	}
}

func TestCompactionPreservesData(t *testing.T) {
	eng, db := newDB(t)
	for i := 0; i < 700; i++ {
		put(eng, db, fmt.Sprintf("key-%04d", i%150), bytes.Repeat([]byte{byte(i)}, 400))
	}
	_, _, _, compactions := db.Stats()
	if compactions == 0 {
		t.Fatal("compaction never ran")
	}
	flushed, compacted := db.WriteAmpBytes()
	if flushed == 0 || compacted == 0 {
		t.Fatal("write volumes not accounted")
	}
	// Latest value of a sampled key survives compaction.
	v, err := get(eng, db, "key-0010")
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 400 {
		t.Fatalf("value len %d", len(v))
	}
}

func TestSeekFindsSuccessor(t *testing.T) {
	eng, db := newDB(t)
	for _, k := range []string{"b", "d", "f"} {
		put(eng, db, k, []byte("v-"+k))
	}
	var gotK string
	ok := false
	db.Seek("c", func(k string, v []byte, err error) {
		if err != nil {
			t.Errorf("seek: %v", err)
		}
		gotK = k
		ok = true
	})
	eng.Run()
	if !ok || gotK != "d" {
		t.Fatalf("seek(c) = %q", gotK)
	}
	db.Seek("z", func(_ string, _ []byte, err error) {
		if err != ErrNotFound {
			t.Errorf("seek past end: %v", err)
		}
		ok = true
	})
	eng.Run()
}

func TestDBBenchWorkloads(t *testing.T) {
	for _, name := range []string{"fillseq", "fillrandom", "fillseekseq"} {
		t.Run(name, func(t *testing.T) {
			eng, db := newDB(t)
			spec, err := DefaultBench(name, 150)
			if err != nil {
				t.Fatal(err)
			}
			spec.ValueB = 256 // fit the tiny test device
			res := RunBench(eng, db, spec)
			if res.Ops == 0 {
				t.Fatal("no ops")
			}
			if res.Errors > 0 {
				t.Fatalf("%d errors", res.Errors)
			}
			if res.OpsPerSec() <= 0 {
				t.Fatal("no rate")
			}
		})
	}
	if _, err := DefaultBench("nope", 1); err == nil {
		t.Fatal("unknown bench accepted")
	}
}

func TestReadRandomAfterFill(t *testing.T) {
	eng, db := newDB(t)
	spec, _ := DefaultBench("fillseq", 200)
	spec.ValueB = 256
	RunBench(eng, db, spec)
	res := RunReadRandom(eng, db, 200, 300, 16, 8, 5)
	if res.Ops != 300 || res.Errors != 0 {
		t.Fatalf("readrandom ops=%d errors=%d", res.Ops, res.Errors)
	}
}
