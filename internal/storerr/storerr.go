// Package storerr defines the canonical typed sentinel errors shared by
// every storage layer in this repository: the ZNS device model, the NVMe
// driver queue, the block-device interface, the zoned-backend adapters, and
// the fault-injection subsystem. Layer-local sentinels (zns.ErrZoneFull,
// blockdev.ErrOutOfRange, ...) wrap these values with %w, so callers can
// branch with errors.Is against either identity without string matching —
// which is what the degraded-read path does to decide whether a failed
// device read is reconstructable from parity.
//
// storerr is a leaf package: it imports only the standard library, so any
// layer may depend on it without cycles.
package storerr

import "errors"

var (
	// ErrZoneFull reports a write to a full zone or beyond zone capacity.
	ErrZoneFull = errors.New("zone is full")

	// ErrWritePointer reports a sequential-write-rule violation: a write
	// that does not start at the zone's write pointer, or a ZRWA write
	// behind the committed (immutable) boundary.
	ErrWritePointer = errors.New("write pointer violation")

	// ErrWrongState reports a zone-state-machine violation (e.g. commit on
	// an empty zone, finish on an offline zone).
	ErrWrongState = errors.New("invalid zone state for command")

	// ErrZoneOffline reports access to a dead zone.
	ErrZoneOffline = errors.New("zone offline")

	// ErrTooManyOpen reports an open that would exceed the device's
	// max-open/active-zones resource limits.
	ErrTooManyOpen = errors.New("too many open zones")

	// ErrReadOnly reports a write to a read-only zone.
	ErrReadOnly = errors.New("zone read-only")

	// ErrOutOfRange reports I/O beyond device or zone bounds.
	ErrOutOfRange = errors.New("address out of range")

	// ErrBadArgument reports malformed request parameters.
	ErrBadArgument = errors.New("bad argument")

	// ErrDeviceDead reports a command sent to a device that has failed
	// whole (injected member death). Permanent: retries cannot help, and
	// the array layer reacts by flipping the member to degraded mode.
	ErrDeviceDead = errors.New("device dead")

	// ErrUnreadable reports a latent sector error: the addressed blocks
	// are lost, but the device is otherwise alive. Permanent for the
	// affected range; the array layer reconstructs from parity.
	ErrUnreadable = errors.New("media unreadable")

	// ErrTransient reports a retryable command failure (command timeout,
	// CRC hiccup). The driver queue retries these with bounded backoff.
	ErrTransient = errors.New("transient I/O error")

	// ErrCrashed reports an operation on an array whose power was cut;
	// call Recover first.
	ErrCrashed = errors.New("array crashed; recover first")

	// ErrNotFound reports a lookup of an object that does not exist: an
	// unknown volume name, an admin job id never issued, a member index
	// beyond the array. Admin surfaces map it to HTTP 404.
	ErrNotFound = errors.New("not found")

	// ErrExists reports creation of an object whose name is already taken
	// (e.g. opening a volume twice). Maps to HTTP 409.
	ErrExists = errors.New("already exists")

	// ErrNoSpace reports an allocation that exceeds remaining capacity, or
	// a volume grow with no contiguous free range. Maps to HTTP 409.
	ErrNoSpace = errors.New("insufficient space")

	// ErrBusy reports an operation refused because the object has work in
	// flight (deleting a volume with queued I/O, cancelling a rebuild that
	// already dissolved stripes). Retry once the object quiesces.
	ErrBusy = errors.New("resource busy")

	// ErrNotSupported reports an operation the platform kind cannot
	// perform (crash-recovery or rebuild on a non-BIZA stack).
	ErrNotSupported = errors.New("operation not supported")
)

// Reconstructable reports whether err is a permanent device-side failure
// that a redundant array should answer by parity reconstruction rather
// than surfacing: the member is dead, the blocks are lost, or the zone
// went offline. Transient errors are not included — the driver retries
// those — and logic errors (bad range, wrong state) indicate host bugs
// that reconstruction would only mask.
func Reconstructable(err error) bool {
	return errors.Is(err, ErrDeviceDead) ||
		errors.Is(err, ErrUnreadable) ||
		errors.Is(err, ErrZoneOffline)
}
