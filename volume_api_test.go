package biza

import (
	"bytes"
	"errors"
	"testing"
)

// TestOpenVolumeRoundTrip: two tenants on a real BIZA array read back
// their own data through disjoint volume-relative address spaces.
func TestOpenVolumeRoundTrip(t *testing.T) {
	a, err := New(Options{StoreData: true, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	va, err := a.OpenVolume("tenant-a", VolumeOptions{Blocks: 256})
	if err != nil {
		t.Fatal(err)
	}
	vb, err := a.OpenVolume("tenant-b", VolumeOptions{Blocks: 256, QoS: VolumeQoS{Weight: 4}})
	if err != nil {
		t.Fatal(err)
	}

	pa := bytes.Repeat([]byte{0xaa}, 4*a.BlockSize())
	pb := bytes.Repeat([]byte{0xbb}, 4*a.BlockSize())
	// Both tenants write "their" LBA 0 — the manager must keep them apart.
	if err := va.WriteSync(0, 4, pa); err != nil {
		t.Fatal(err)
	}
	if err := vb.WriteSync(0, 4, pb); err != nil {
		t.Fatal(err)
	}
	got, err := va.ReadSync(0, 4)
	if err != nil || !bytes.Equal(got, pa) {
		t.Fatalf("tenant-a read back: err=%v match=%v", err, bytes.Equal(got, pa))
	}
	got, err = vb.ReadSync(0, 4)
	if err != nil || !bytes.Equal(got, pb) {
		t.Fatalf("tenant-b read back: err=%v match=%v", err, bytes.Equal(got, pb))
	}

	// Volume-relative bounds are enforced even though the array is larger.
	if err := va.WriteSync(255, 2, nil); err == nil {
		t.Fatal("cross-boundary write succeeded")
	}
	if st := va.Stats(); st.Writes != 1 || st.Reads != 1 {
		t.Fatalf("tenant-a stats %+v", st)
	}
}

func TestConfigureVolumesOnceOnly(t *testing.T) {
	a, err := New(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.ConfigureVolumes(VolumeManagerConfig{MaxInflight: 8}); err != nil {
		t.Fatal(err)
	}
	if err := a.ConfigureVolumes(VolumeManagerConfig{}); err == nil {
		t.Fatal("second ConfigureVolumes succeeded")
	}
	if _, err := a.OpenVolume("v", VolumeOptions{Blocks: 16}); err != nil {
		t.Fatal(err)
	}
	// OpenVolume after exhausting capacity errors instead of overlapping.
	if _, err := a.OpenVolume("huge", VolumeOptions{Blocks: a.Blocks()}); err == nil {
		t.Fatal("over-capacity open succeeded")
	}
}

// TestHealthNilForNonBIZAKinds pins the documented Health contract:
// baseline platforms have no member-state tracking and report nil.
func TestHealthNilForNonBIZAKinds(t *testing.T) {
	for _, k := range []Kind{RAIZN, MdraidConvSSD, DmzapRAIZN} {
		a, err := New(Options{Kind: k, Seed: 2})
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if h := a.Health(); h != nil {
			t.Fatalf("%v: Health() = %v, want nil", k, h)
		}
	}
	a, err := New(Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if h := a.Health(); len(h) == 0 {
		t.Fatal("BIZA kind: Health() empty, want member states")
	}
}

func TestVolumeErrorsSurface(t *testing.T) {
	a, err := New(Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	v, err := a.OpenVolume("v", VolumeOptions{Blocks: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := v.WriteSync(-1, 1, nil); err == nil {
		t.Fatal("negative lba accepted")
	}
	if _, err := v.ReadSync(64, 1); err == nil {
		t.Fatal("out-of-range read accepted")
	}
	// Bounds errors are blockdev sentinels, not crash errors.
	if err := v.WriteSync(63, 2, nil); errors.Is(err, ErrCrashed) {
		t.Fatalf("cross-boundary write reported crash: %v", err)
	}
}
