//go:build ignore

// Command perf_snapshot measures the simulator's hot-path performance and
// writes BENCH_perf.json, the committed perf-trajectory artifact:
//
//   - the end-to-end fig10 sweep: wall time, simulated virtual time, and
//     simulated-ns-per-wall-second (the headline throughput metric);
//   - erasure.Encode throughput for the wide (8-bytes-per-step split-table)
//     kernels against a byte-at-a-time GF(256) reference, as MB/s and
//     speedup ratios;
//   - the sharded fleet scaling sweep: the fleet experiment at
//     -shards 1/2/4/8 with wall time and speedup versus one shard. The
//     speedup is only meaningful relative to the recorded "cpus" count —
//     on a single-core machine the sweep documents overhead, not scaling;
//     the multi-core numbers come from the CI runners (perf-smoke and the
//     nightly fleet-soak regenerate this snapshot and upload it).
//
// The "gobench" field carries the same numbers in Go benchmark text
// format so CI can diff snapshots with benchstat.
//
// Usage: go run scripts/perf_snapshot.go [-o BENCH_perf.json] [-seed-wall-ns N]
//
// -seed-wall-ns anchors the fig10 speedup ratio to a baseline wall time
// (nanoseconds) measured on the same machine at an earlier commit; pass 0
// to omit the ratio.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"runtime"
	"testing"

	"biza/internal/bench"
	"biza/internal/erasure"
)

// gfExp/gfLog replicate the byte-at-a-time log/exp kernel the repository
// used before the wide split-table rework (the same implementation the
// in-package scalar oracle preserves), so the recorded speedup is new
// Encode versus the code it replaced.
var gfExp, gfLog = func() ([512]byte, [256]byte) {
	var exp [512]byte
	var log [256]byte
	x := 1
	for i := 0; i < 255; i++ {
		exp[i] = byte(x)
		log[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= 0x11d
		}
	}
	for i := 255; i < 512; i++ {
		exp[i] = exp[i-255]
	}
	return exp, log
}()

// refEncode computes parity with the Vandermonde rows the Coder exposes,
// one byte at a time: the scalar baseline for the speedup ratio.
func refEncode(rows [][]byte, data, parity [][]byte) {
	for r := range parity {
		p := parity[r]
		for i := range p {
			p[i] = 0
		}
		for col := range data {
			c := rows[r][col]
			src := data[col]
			if c == 0 {
				continue
			}
			if c == 1 {
				for i := range src {
					p[i] ^= src[i]
				}
				continue
			}
			logC := int(gfLog[c])
			for i, s := range src {
				if s != 0 {
					p[i] ^= gfExp[logC+int(gfLog[s])]
				}
			}
		}
	}
}

type encodeResult struct {
	K          int     `json:"k"`
	M          int     `json:"m"`
	BlockBytes int     `json:"block_bytes"`
	WideMBps   float64 `json:"wide_mb_per_s"`
	ScalarMBps float64 `json:"scalar_mb_per_s"`
	Speedup    float64 `json:"speedup"`
}

func benchEncode(k, m, blockBytes int) encodeResult {
	c, err := erasure.NewCoder(k, m)
	if err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(1))
	data := make([][]byte, k)
	for i := range data {
		data[i] = make([]byte, blockBytes)
		rng.Read(data[i])
	}
	parity := make([][]byte, m)
	for i := range parity {
		parity[i] = make([]byte, blockBytes)
	}
	rows := c.ParityRows()
	mbPerS := func(r testing.BenchmarkResult) float64 {
		bytesPerOp := float64(k * blockBytes)
		return bytesPerOp * float64(r.N) / r.T.Seconds() / 1e6
	}
	wide := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := c.Encode(data, parity); err != nil {
				b.Fatal(err)
			}
		}
	})
	scalar := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			refEncode(rows, data, parity)
		}
	})
	res := encodeResult{
		K: k, M: m, BlockBytes: blockBytes,
		WideMBps:   mbPerS(wide),
		ScalarMBps: mbPerS(scalar),
	}
	if res.ScalarMBps > 0 {
		res.Speedup = res.WideMBps / res.ScalarMBps
	}
	return res
}

type fig10Result struct {
	Experiment    string  `json:"experiment"`
	Seed          uint64  `json:"seed"`
	WallNs        int64   `json:"wall_ns"`
	SimNs         int64   `json:"sim_ns"`
	SimNsPerWallS float64 `json:"sim_ns_per_wall_s"`
	SeedWallNs    int64   `json:"seed_wall_ns,omitempty"`
	SeedCommit    string  `json:"seed_commit,omitempty"`
	Speedup       float64 `json:"speedup_vs_seed,omitempty"`
}

type fleetScaleResult struct {
	Shards        int     `json:"shards"`
	WallNs        int64   `json:"wall_ns"`
	SimNs         int64   `json:"sim_ns"`
	SimNsPerWallS float64 `json:"sim_ns_per_wall_s"`
	Speedup       float64 `json:"speedup_vs_1_shard"`
}

// benchFleet runs the sharded fleet at one shard count (best wall time
// of three runs, since one sweep is too short to average out GC and
// scheduler noise) and spot-checks the determinism contract: every
// run's samples must be identical to the 1-shard reference (ref nil for
// the reference run itself).
func benchFleet(seed uint64, shards int, ref *bench.Report) (fleetScaleResult, *bench.Report) {
	var best *bench.Report
	for i := 0; i < 3; i++ {
		rep := (&bench.Runner{Scale: bench.DefaultScale(), Seed: seed, Parallel: 1, Shards: shards}).Run([]string{"fleet"})
		res := &rep.Results[0]
		if res.Error != "" {
			fmt.Fprintf(os.Stderr, "fleet (shards=%d) failed: %s\n", shards, res.Error)
			os.Exit(1)
		}
		against := ref
		if against == nil {
			against = best
		}
		if against != nil && !reflect.DeepEqual(res.Samples, against.Results[0].Samples) {
			fmt.Fprintf(os.Stderr, "fleet samples at shards=%d not reproducible — determinism bug\n", shards)
			os.Exit(1)
		}
		if best == nil || rep.WallNanos < best.WallNanos {
			best = rep
		}
	}
	fs := fleetScaleResult{Shards: shards, WallNs: best.WallNanos, SimNs: best.Results[0].Stats.VirtualNanos}
	if fs.WallNs > 0 {
		fs.SimNsPerWallS = float64(fs.SimNs) / (float64(fs.WallNs) / 1e9)
	}
	return fs, best
}

type snapshot struct {
	Schema     string             `json:"schema"`
	Go         string             `json:"go"`
	CPUs       int                `json:"cpus"` // cores the fleet sweep had available
	Fig10      fig10Result        `json:"fig10"`
	Encode     []encodeResult     `json:"encode"`
	FleetScale []fleetScaleResult `json:"fleet_scale"`
	GoBench    []string           `json:"gobench"`
}

func main() {
	out := flag.String("o", "BENCH_perf.json", "output path")
	seedWall := flag.Int64("seed-wall-ns", 0,
		"baseline fig10 wall time (ns) from the pre-optimization commit; 0 omits the ratio")
	seedCommit := flag.String("seed-commit", "", "commit the baseline was measured at")
	seed := flag.Uint64("seed", 42, "simulation seed")
	flag.Parse()

	fmt.Fprintln(os.Stderr, "perf_snapshot: running fig10...")
	rep := (&bench.Runner{Scale: bench.DefaultScale(), Seed: *seed, Parallel: 1}).Run([]string{"fig10"})
	res := &rep.Results[0]
	if res.Error != "" {
		fmt.Fprintf(os.Stderr, "fig10 failed: %s\n", res.Error)
		os.Exit(1)
	}
	f10 := fig10Result{
		Experiment: "fig10",
		Seed:       *seed,
		WallNs:     rep.WallNanos,
		SimNs:      res.Stats.VirtualNanos,
	}
	if f10.WallNs > 0 {
		f10.SimNsPerWallS = float64(f10.SimNs) / (float64(f10.WallNs) / 1e9)
	}
	if *seedWall > 0 {
		f10.SeedWallNs = *seedWall
		f10.SeedCommit = *seedCommit
		f10.Speedup = float64(*seedWall) / float64(f10.WallNs)
	}

	fmt.Fprintln(os.Stderr, "perf_snapshot: running erasure encode...")
	enc := []encodeResult{
		benchEncode(4, 2, 4096),
		benchEncode(8, 3, 4096),
	}

	fmt.Fprintln(os.Stderr, "perf_snapshot: running fleet scaling sweep...")
	var fleet []fleetScaleResult
	var fleetRef *bench.Report
	for _, shards := range []int{1, 2, 4, 8} {
		fs, rep := benchFleet(*seed, shards, fleetRef)
		if shards == 1 {
			fleetRef = rep
		}
		if base := fleet; len(base) > 0 && fs.WallNs > 0 {
			fs.Speedup = float64(base[0].WallNs) / float64(fs.WallNs)
		} else {
			fs.Speedup = 1
		}
		fleet = append(fleet, fs)
	}

	snap := snapshot{
		Schema:     "biza-perf/v1",
		Go:         runtime.Version(),
		CPUs:       runtime.NumCPU(),
		Fig10:      f10,
		Encode:     enc,
		FleetScale: fleet,
	}
	snap.GoBench = append(snap.GoBench,
		fmt.Sprintf("BenchmarkEndToEndFig10 1 %d ns/op %.0f sim-ns/wall-s", f10.WallNs, f10.SimNsPerWallS))
	for _, e := range enc {
		snap.GoBench = append(snap.GoBench,
			fmt.Sprintf("BenchmarkEncodeWide%dx%d 1 %.0f MB/s", e.K, e.M, e.WideMBps),
			fmt.Sprintf("BenchmarkEncodeScalar%dx%d 1 %.0f MB/s", e.K, e.M, e.ScalarMBps))
	}
	for _, fs := range fleet {
		snap.GoBench = append(snap.GoBench,
			fmt.Sprintf("BenchmarkFleetShards%d 1 %d ns/op %.0f sim-ns/wall-s", fs.Shards, fs.WallNs, fs.SimNsPerWallS))
	}

	buf, err := json.MarshalIndent(&snap, "", "  ")
	if err != nil {
		panic(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "writing %s: %v\n", *out, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: fig10 %.2fs wall, %.0f sim-ns/wall-s", *out,
		float64(f10.WallNs)/1e9, f10.SimNsPerWallS)
	if f10.Speedup > 0 {
		fmt.Printf(", %.2fx vs seed", f10.Speedup)
	}
	for _, e := range enc {
		fmt.Printf("; encode %dx%d %.2fx", e.K, e.M, e.Speedup)
	}
	for _, fs := range fleet {
		fmt.Printf("; fleet s%d %.2fx", fs.Shards, fs.Speedup)
	}
	fmt.Printf(" (%d cpus)\n", snap.CPUs)
}
