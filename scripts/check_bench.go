// Command check_bench gates CI on a bizabench JSON artifact: it fails
// (non-zero exit) if the report is missing, malformed, carries the wrong
// schema, records any experiment error, or yields zero samples for any
// metric column of any table.
//
// Usage: go run scripts/check_bench.go /tmp/bench.json
package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strings"

	"biza/internal/bench"
)

func main() {
	if len(os.Args) != 2 {
		fail("usage: check_bench <bench.json>")
	}
	path := os.Args[1]
	buf, err := os.ReadFile(path)
	if err != nil {
		fail("reading %s: %v", path, err)
	}
	var rep bench.Report
	if err := json.Unmarshal(buf, &rep); err != nil {
		fail("%s: malformed JSON: %v", path, err)
	}
	if rep.Schema != bench.ReportSchema {
		fail("%s: schema %q, want %q", path, rep.Schema, bench.ReportSchema)
	}
	if len(rep.Results) == 0 {
		fail("%s: no results", path)
	}
	totalSamples := 0
	for i := range rep.Results {
		res := &rep.Results[i]
		if res.Error != "" {
			fail("experiment %s failed: %s", res.Experiment, res.Error)
		}
		if len(res.Tables) == 0 {
			fail("experiment %s: no tables", res.Experiment)
		}
		if len(res.Samples) == 0 {
			fail("experiment %s: no samples", res.Experiment)
		}
		// Every metric column of every table must have at least one
		// sample: an all-dash or unparseable column means the experiment
		// silently stopped reporting that metric. No sample may be
		// non-finite — a NaN/Inf means a zero-sample run leaked through a
		// division somewhere upstream.
		byMetric := map[string]int{}
		for _, s := range res.Samples {
			if math.IsNaN(s.Value) || math.IsInf(s.Value, 0) {
				fail("experiment %s: non-finite sample %s = %v",
					res.Experiment, s.SampleKey(), s.Value)
			}
			byMetric[s.Table+"/"+s.Metric]++
		}
		// Table cells render through fmt: a "NaN"/"Inf" cell is the
		// stringified form of the same bug (parseCell drops it from the
		// samples, so the byMetric check alone can miss it).
		for _, tab := range res.Tables {
			for _, row := range tab.Rows {
				for ci, cell := range row {
					if strings.Contains(cell, "NaN") || strings.Contains(cell, "Inf") {
						fail("experiment %s: table %s row %q has non-finite cell %q (col %d)",
							res.Experiment, tab.ID, row[0], cell, ci)
					}
				}
			}
		}
		for _, h := range res.Histograms {
			if math.IsNaN(h.Summary.Mean) || math.IsInf(h.Summary.Mean, 0) {
				fail("experiment %s: histogram %s has non-finite mean", res.Experiment, h.Name)
			}
		}
		for _, tab := range res.Tables {
			lc := tab.LabelCols
			if lc == 0 {
				lc = 1
			}
			if len(tab.Rows) == 0 {
				fail("experiment %s: table %s has no rows", res.Experiment, tab.ID)
			}
			for _, metric := range tab.Header[lc:] {
				if byMetric[tab.ID+"/"+metric] == 0 {
					fail("experiment %s: zero samples for metric %s/%s",
						res.Experiment, tab.ID, metric)
				}
			}
		}
		totalSamples += len(res.Samples)
	}
	fmt.Printf("bench check ok: %d experiment(s), %d samples, %s total\n",
		len(rep.Results), totalSamples, rep.Stats())
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "check_bench: "+format+"\n", args...)
	os.Exit(1)
}
