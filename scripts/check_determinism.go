//go:build ignore

// Command check_determinism gates CI on bit-identical bizabench output:
// given two or more JSON reports produced by runs that differ only in
// execution layout (-parallel worker count, -shards engine shards), it
// fails (non-zero exit) unless every simulation-derived field matches the
// first report exactly.
//
// Compared per result: experiment id, error, tables (cell for cell),
// samples, histogram dumps, virtual-time series (point for point), and
// observability probe readings; plus report schema, seed, quick flag, and
// total virtual nanoseconds. Deliberately
// ignored: wall-clock accounting (stats.wall_ns, wall_ns) and the
// parallel/shards provenance fields, which are the only values allowed to
// differ between layouts.
//
// Usage: go run scripts/check_determinism.go ref.json other.json [more.json ...]
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"

	"biza/internal/bench"
	"biza/internal/metrics"
)

func main() {
	if len(os.Args) < 3 {
		fail("usage: check_determinism <ref.json> <other.json> [more.json ...]")
	}
	ref := load(os.Args[1])
	for _, path := range os.Args[2:] {
		diff(os.Args[1], ref, path, load(path))
	}
	samples := 0
	for i := range ref.Results {
		samples += len(ref.Results[i].Samples)
	}
	fmt.Printf("determinism ok: %d report(s), %d experiment(s), %d samples identical\n",
		len(os.Args)-1, len(ref.Results), samples)
}

func load(path string) *bench.Report {
	buf, err := os.ReadFile(path)
	if err != nil {
		fail("reading %s: %v", path, err)
	}
	var rep bench.Report
	if err := json.Unmarshal(buf, &rep); err != nil {
		fail("%s: malformed JSON: %v", path, err)
	}
	return &rep
}

// diff compares every simulation-derived field of b against a, reporting
// the first mismatch with enough context to localize it.
func diff(aPath string, a *bench.Report, bPath string, b *bench.Report) {
	if a.Schema != b.Schema {
		fail("%s: schema %q, %s has %q", bPath, b.Schema, aPath, a.Schema)
	}
	if a.Seed != b.Seed {
		fail("%s: seed %d, %s has %d (the runs must share -seed)", bPath, b.Seed, aPath, a.Seed)
	}
	if a.Quick != b.Quick {
		fail("%s: quick=%v, %s has quick=%v (the runs must share -quick)", bPath, b.Quick, aPath, a.Quick)
	}
	if len(a.Results) != len(b.Results) {
		fail("%s: %d results, %s has %d", bPath, len(b.Results), aPath, len(a.Results))
	}
	for i := range a.Results {
		ra, rb := &a.Results[i], &b.Results[i]
		if ra.Experiment != rb.Experiment {
			fail("%s: result %d is %q, %s has %q", bPath, i, rb.Experiment, aPath, ra.Experiment)
		}
		id := ra.Experiment
		if ra.Error != rb.Error {
			fail("%s: experiment %s error %q, %s has %q", bPath, id, rb.Error, aPath, ra.Error)
		}
		diffTables(aPath, bPath, id, ra.Tables, rb.Tables)
		if !reflect.DeepEqual(ra.Samples, rb.Samples) {
			fail("%s: experiment %s samples differ from %s (%d vs %d)",
				bPath, id, aPath, len(rb.Samples), len(ra.Samples))
		}
		if !reflect.DeepEqual(ra.Histograms, rb.Histograms) {
			fail("%s: experiment %s histograms differ from %s", bPath, id, aPath)
		}
		diffSeries(aPath, bPath, id, ra.Series, rb.Series)
		if ra.Stats.VirtualNanos != rb.Stats.VirtualNanos {
			fail("%s: experiment %s simulated %d virtual ns, %s simulated %d",
				bPath, id, rb.Stats.VirtualNanos, aPath, ra.Stats.VirtualNanos)
		}
		if !reflect.DeepEqual(ra.Stats.Probes, rb.Stats.Probes) {
			fail("%s: experiment %s probe readings differ from %s (%d vs %d probes)",
				bPath, id, aPath, len(rb.Stats.Probes), len(ra.Stats.Probes))
		}
	}
}

// diffSeries compares the virtual-time series section, localizing a
// mismatch to the first differing series and point.
func diffSeries(aPath, bPath, id string, sa, sb []metrics.SeriesDump) {
	if len(sa) != len(sb) {
		fail("%s: experiment %s has %d series, %s has %d", bPath, id, len(sb), aPath, len(sa))
	}
	for i := range sa {
		a, b := &sa[i], &sb[i]
		if a.Trace != b.Trace || a.Name != b.Name || a.Kind != b.Kind || a.IntervalNs != b.IntervalNs {
			fail("%s: experiment %s series %d is %s/%s(%s,%dns), %s has %s/%s(%s,%dns)",
				bPath, id, i, b.Trace, b.Name, b.Kind, b.IntervalNs,
				aPath, a.Trace, a.Name, a.Kind, a.IntervalNs)
		}
		if len(a.Points) != len(b.Points) {
			fail("%s: series %s/%s has %d points, %s has %d",
				bPath, a.Trace, a.Name, len(b.Points), aPath, len(a.Points))
		}
		for p := range a.Points {
			if a.Points[p] != b.Points[p] {
				fail("%s: series %s/%s point %d = %v, %s has %v",
					bPath, a.Trace, a.Name, p, b.Points[p], aPath, a.Points[p])
			}
		}
	}
}

func diffTables(aPath, bPath, id string, ta, tb []*bench.Table) {
	if len(ta) != len(tb) {
		fail("%s: experiment %s has %d tables, %s has %d", bPath, id, len(tb), aPath, len(ta))
	}
	for t := range ta {
		a, b := ta[t], tb[t]
		if a.ID != b.ID || a.Title != b.Title {
			fail("%s: experiment %s table %d is %s(%q), %s has %s(%q)",
				bPath, id, t, b.ID, b.Title, aPath, a.ID, a.Title)
		}
		if !reflect.DeepEqual(a.Header, b.Header) {
			fail("%s: table %s header %v, %s has %v", bPath, a.ID, b.Header, aPath, a.Header)
		}
		if len(a.Rows) != len(b.Rows) {
			fail("%s: table %s has %d rows, %s has %d", bPath, a.ID, len(b.Rows), aPath, len(a.Rows))
		}
		for r := range a.Rows {
			if !reflect.DeepEqual(a.Rows[r], b.Rows[r]) {
				fail("%s: table %s row %d = %v, %s has %v",
					bPath, a.ID, r, b.Rows[r], aPath, a.Rows[r])
			}
		}
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "check_determinism: "+format+"\n", args...)
	os.Exit(1)
}
