//go:build ignore

// Command check_trace gates CI on a bizabench -trace artifact (Perfetto
// trace_event JSON). It fails (non-zero exit) if the trace is missing,
// malformed, has non-monotonic virtual timestamps within any process,
// carries unmatched or zero I/O spans, lacks spans from the nvme and zns
// layers plus at least one array engine (biza/raizn/zapraid), or records
// zero zone events.
//
// Usage: go run scripts/check_trace.go /tmp/fig10_trace.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type event struct {
	Name string          `json:"name"`
	Cat  string          `json:"cat"`
	Ph   string          `json:"ph"`
	ID   uint64          `json:"id"`
	Pid  int             `json:"pid"`
	TS   json.Number     `json:"ts"`
	Dur  json.Number     `json:"dur"`
	Args json.RawMessage `json:"args"`
}

func main() {
	if len(os.Args) != 2 {
		fail("usage: check_trace <trace.json>")
	}
	path := os.Args[1]
	f, err := os.Open(path)
	if err != nil {
		fail("%v", err)
	}
	defer f.Close()

	dec := json.NewDecoder(bufio.NewReaderSize(f, 1<<16))
	tok, err := dec.Token()
	if err != nil {
		fail("%s: not JSON: %v", path, err)
	}
	if d, ok := tok.(json.Delim); !ok || d != '[' {
		fail("%s: not a trace_event JSON array", path)
	}

	var (
		n          int
		lastTS     = map[int]int64{} // pid -> last seen ts (monotonicity)
		openSpans  = map[int]map[uint64]bool{}
		spanBegins int
		spanEnds   int
		zoneEvents int
		layers     = map[string]int{} // span layer (cat) -> count
	)
	for dec.More() {
		var ev event
		if err := dec.Decode(&ev); err != nil {
			fail("%s: event %d: %v", path, n, err)
		}
		n++
		if ev.Ph == "M" {
			continue // metadata carries no timestamp
		}
		ts, err := usToNs(ev.TS)
		if err != nil {
			fail("%s: event %d (%s %q): %v", path, n, ev.Ph, ev.Name, err)
		}
		if ts < 0 {
			fail("%s: event %d (%s %q): negative timestamp %s", path, n, ev.Ph, ev.Name, ev.TS)
		}
		if last, ok := lastTS[ev.Pid]; ok && ts < last {
			fail("%s: event %d (%s %q): pid %d timestamp went backwards (%d < %d ns)",
				path, n, ev.Ph, ev.Name, ev.Pid, ts, last)
		}
		lastTS[ev.Pid] = ts
		switch ev.Ph {
		case "b":
			spanBegins++
			layers[ev.Cat]++
			if openSpans[ev.Pid] == nil {
				openSpans[ev.Pid] = map[uint64]bool{}
			}
			if openSpans[ev.Pid][ev.ID] {
				fail("%s: pid %d: span %d begun twice", path, ev.Pid, ev.ID)
			}
			openSpans[ev.Pid][ev.ID] = true
		case "e":
			spanEnds++
			if !openSpans[ev.Pid][ev.ID] {
				fail("%s: pid %d: span %d ended without begin", path, ev.Pid, ev.ID)
			}
			delete(openSpans[ev.Pid], ev.ID)
		case "X":
			dur, err := usToNs(ev.Dur)
			if err != nil || dur < 0 {
				fail("%s: event %d (%q): bad duration %s", path, n, ev.Name, ev.Dur)
			}
			// Service slices attribute their layer via args (the async
			// I/O span is owned by the driver queue; device layers
			// contribute phase/segment slices to it).
			var args struct {
				Layer string `json:"layer"`
			}
			json.Unmarshal(ev.Args, &args)
			if args.Layer != "" {
				layers[args.Layer]++
			}
		case "i":
			if ev.Cat == "event" {
				zoneEvents++
			}
		}
	}
	if tok, err = dec.Token(); err != nil {
		fail("%s: missing closing bracket: %v", path, err)
	}

	if spanBegins == 0 {
		fail("%s: no I/O spans", path)
	}
	var unterminated int
	for _, open := range openSpans {
		unterminated += len(open)
	}
	if unterminated > 0 {
		fail("%s: %d unterminated span(s)", path, unterminated)
	}
	for _, want := range []string{"nvme", "zns"} {
		if layers[want] == 0 {
			fail("%s: no spans or slices from the %s layer", path, want)
		}
	}
	if layers["biza"]+layers["raizn"]+layers["zapraid"] == 0 {
		fail("%s: no spans from any array engine (biza/raizn/zapraid)", path)
	}
	if zoneEvents == 0 {
		fail("%s: no zone events", path)
	}
	var ls []string
	for l, c := range layers {
		ls = append(ls, fmt.Sprintf("%s=%d", l, c))
	}
	fmt.Printf("trace check ok: %d events, %d spans (%s), %d zone events, %d processes\n",
		n, spanBegins, strings.Join(sorted(ls), " "), zoneEvents, len(lastTS))
}

func sorted(s []string) []string {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s
}

// usToNs converts a fixed-point microsecond literal ("12.345") to integer
// nanoseconds without a float round-trip.
func usToNs(n json.Number) (int64, error) {
	s := n.String()
	if s == "" {
		return 0, nil
	}
	whole, frac := s, ""
	if i := strings.IndexByte(s, '.'); i >= 0 {
		whole, frac = s[:i], s[i+1:]
	}
	us, err := strconv.ParseInt(whole, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad timestamp %q: %w", n, err)
	}
	for len(frac) < 3 {
		frac += "0"
	}
	ns, err := strconv.ParseInt(frac[:3], 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad timestamp %q: %w", n, err)
	}
	return us*1000 + ns, nil
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "check_trace: "+format+"\n", args...)
	os.Exit(1)
}
