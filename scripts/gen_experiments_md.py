#!/usr/bin/env python3
"""Assemble EXPERIMENTS.md from a `bizabench -exp all` text dump.

Usage: gen_experiments_md.py /tmp/experiments_full.txt > EXPERIMENTS.md

The commentary blocks below record the paper-vs-measured comparison for
each artifact; the tables are pasted verbatim from the run output.
"""
import re
import sys

COMMENTARY = {
    "table2": """Paper: Table 2 lists ZRWA configurations of four commodity ZNS SSDs.
Measured: generated from the device presets; matches the paper column for
column (zone capacity, ZRWA per open zone, max open zones, total ZRWA).""",
    "table3": """Paper: single zone 1092 MB/s; two zones on one channel stay at 1092 MB/s
with 2x average and ~4x p99.99 latency; two zones on diverse channels reach
2170 MB/s at near-single-zone latency.
Measured: 1151 / 1160 / 2169 MB/s with the same latency ordering (~2x
average and ~1.8x tail on the shared channel; near-parity on diverse
channels). Shape match: no bandwidth from same-channel pairing, 2x from
diverse channels, tail inflation only on the shared channel.""",
    "fig4": """Paper: only ~17% of SYSTOR reuse distances fall within 14 MB (the ZN540's
total ZRWA), motivating the selector.
Measured: CDF(14MB) ~= 0.13 on the synthetic SYSTOR-like population —
the same "ZRWA is far too small for raw temporal locality" regime.""",
    "fig5": """Paper: one in-flight write retains 34.7-45.5% of a zone's bandwidth
(65.3% max loss) across 4-192 KiB sizes.
Measured: retention 0.18-0.45 growing with request size; 32 in-flight
writes saturate the zone at ~1.1-1.2 GB/s in every size. Shape match:
single in-flight cannot fill the die pipeline; depth restores it.""",
    "fig10a": """Paper: BIZA ~92.2% of the 6.4 GB/s ideal; dmzap+RAIZN capped at 47.7%
(3.1 GB/s); mdraid-based platforms in between, mdraid+dmzap hurt at larger
sizes; RAIZN has no random-write bars.
Measured: BIZA ~5.2 GB/s (~81% of ideal) vs dmzap+RAIZN ~1.0 GB/s and
raw RAIZN ~3.4 GB/s (53% of ideal, the journal cap); RAIZN columns empty
for random writes; mdraid platforms land between, with their random-write
columns below sequential (cache merging works for sequential streams, as
in the paper). The gap to dmzap+RAIZN is larger than the paper's 2.7x
because dm-zap's open-zone budget must reserve half its slots for zone
retirement in this model, halving its fan-out.""",
    "fig10b": """Paper: BIZA lowest average write latency among ZNS platforms (53.8%
below RAIZN at the same depth).
Measured: same ordering — BIZA's average latency is the lowest of the
ZNS-based platforms at every size (mdraid's volatile-cache ack gives it
small-write latencies BIZA does not try to match; the paper's mdraid rows
behave the same way).""",
    "fig11a": """Paper: all platforms comparable on 4 KiB reads; BIZA and dmzap+RAIZN
near the 12.8 GB/s ideal at larger sizes, mdraid-based slower.
Measured: 4 KiB reads comparable everywhere (~2.6-3.4 GB/s, controller
bound); larger reads reach ~5.4-6.6 GB/s for every platform (the read
path has no engine bottleneck; the remaining gap to ideal is per-command
overhead in the simulated controller).""",
    "fig11b": "Read latencies mirror the throughput table; no engine adds a read-path penalty.",
    "fig12": """Paper: dmzap+RAIZN trails mdraid+dmzap by ~2x on traces; BIZA improves
on mdraid+dmzap by 76.5% on average and is comparable to mdraid+ConvSSD
(slightly behind on the small-write traces casa/online/ikki).
Measured: same ordering on every trace — BIZA first or tied with
mdraid+ConvSSD, dmzap+RAIZN last on write-heavy traces; on casa/online/
ikki BIZA's margin is smallest, echoing the paper's observation about
small writes not stressing parallelism.""",
    "fig13a": """Paper: BIZA outperforms the RAIZN-based configuration by 26.6%/24.9%/
18.7% on randomwrite/fileserver/oltp and only marginally on webserver
(4.8% writes).
Measured (dmzap+RAIZN standing in for F2FS-on-RAIZN, see DESIGN.md):
3.15x / 2.70x / 1.80x / 0.99x — the same monotone pattern: gains track
write intensity and vanish for the read-dominated personality.""",
    "fig13b": """Paper: BIZA beats RAIZN by up to 10.5% (8.0% average) on db_bench fill
workloads over F2FS.
Measured: 1.1-1.6x over the RAIZN-based baseline across fillseq/
fillrandom/fillseekseq — direction and ordering as in the paper, with a
larger margin because the adapter baseline is weaker than native RAIZN.""",
    "fig14": """Paper: BIZA cuts write amplification 42.7% vs the best adapter baseline;
BIZAw/oSelector gives up 12.6% of the reduction; nocache writes 2.0x and
the ideal bound absorbs every update; gains shrink on long-reuse-distance
traces (tencent).
Measured: BIZA lands between the analytic ideal and nocache bounds on
every trace, below both adapter baselines on the short-reuse-distance
traces (casa/online/ikki), with the selector's contribution visible as
the BIZA vs BIZAw/oSel gap on reuse-heavy workloads and both converging
to the journal-bound 1.33 on tencent (90% of reuse distances beyond the
total ZRWA, as in the paper).""",
    "fig15": """Paper: GC inflates p99.99 tails on all platforms (dmzap+RAIZN by 10.3x,
mdraid+dmzap by 2.2x); BIZA's avoidance cuts the inflation by 27.4%
(iodepth 32) and 74.9% (iodepth 1) vs BIZAw/oAvoid.
Measured: with GC continuously active, BIZA's p99.99 sits 40-45% below
BIZAw/oAvoid on every size at both depths; dmzap+RAIZN's tails are the
worst by a wide margin (its GC is invisible to the host and serialized
behind the one-in-flight lock), and mdraid+dmzap inflates heavily at
64-192 KiB. Same ordering and direction as the paper; the multipliers vs
the idle baseline are larger because the sustained-churn scenario keeps
GC active for the entire measurement.""",
    "fig16": """Paper: write counts fall monotonically as ZRWA grows from 4 KiB to
1024 KiB; at 4 KiB no data updates are absorbed but ALL partial parities
are (parity drops to the 1/3 final-parity floor).
Measured: the 4 KiB row shows data ~1.0 with parity ~0.33 — exactly the
paper's anchor observation — and both components fall monotonically with
ZRWA size on casa and online.""",
    "fig17": """Paper: dm-zap's spin lock dominates CPU (50.4%/84.7% of dmzap+RAIZN and
mdraid+dmzap); BIZA spends ~31.5% more CPU than dmzap+RAIZN but delivers
88.5% more throughput, giving the best CPU-per-GB/s.
Measured: the dmzap component dwarfs every other engine component in both
adapter stacks, and BIZA's cpu%-per-GB/s is the lowest of the platforms.""",
    "table6": """Synthesized trace characteristics versus Table 6: write ratios match the
paper exactly by construction; average sizes approximate the table; the
last column verifies the reuse-distance calibration (casa ~8%, tencent
~83-90% beyond 56 MB, §5.4's anchors).""",
    "detect": """Extension experiment (design-choice ablation from DESIGN.md): the
guess-and-verify detector on aged devices. Avoidance with detection cuts
the fraction of user writes landing on truly-busy channels by 2-3x on
moderately aged devices, and the benefit degrades gracefully as the
round-robin prior gets worse.""",
    "batching": """Extension experiment: BIZA's contiguous-chunk submission merging versus
single-block commands — ~1.5x throughput at 64-192 KiB requests, the
per-command overhead argument for request merging above 4 KiB chunks.""",
    "wear": """Extension experiment: erase-count distribution after identical churn.
The selector halves BIZA's zone erases; dmzap+RAIZN concentrates wear on
its centralized journal zone (highest per-zone erase count), the §3.3
problem made visible at the flash level.""",
    "future": """Extension experiment implementing §6's "future ZNS designs" proposal:
the device piggybacks the zone-to-channel mapping in OPEN completions.
On heavily aged devices (75% of zones off the round-robin pattern) the
guess-and-verify detector leaves most guesses wrong; with CQE-informed
opens every guess is exact, the detector goes idle (zero corrections),
and the busy-channel collision rate drops severalfold — quantifying why
the paper asks vendors for this interface.""",
    "append": """Extension experiment quantifying §3.2's design argument: an APPEND-based
engine (ZapRAID-style) matches BIZA's sequential throughput within ~20%
(both exploit intra-zone parallelism), but without ZRWA every hot
overwrite reaches flash — BIZA's write counts on a hot-overwrite workload
are several times lower. This is the endurance case for choosing ZRWA
over APPEND despite APPEND's simpler reorder-safety story.""",
    "fleet": """Extension experiment: the multi-array sharded fleet
(`bizabench -exp fleet`). Hundreds of independent BIZA arrays are
partitioned across engine shards (`sim.ShardGroup`, one goroutine per
shard) while thousands of closed-loop clients hop between arrays over a
20 us fabric, with a zipf(0.9) popularity skew. The table bins arrays in
construction order; the skew shows up as the first bin carrying an
order of magnitude more traffic — and a queueing-inflated p50 — while
the cold tail stays at the uncontended ~15-20 us service latency. Output
is byte-identical at any `-shards` value (CI compares 1/2/8); the
wall-clock scaling lives in BENCH_perf.json's `fleet_scale` sweep, not
in any table cell.""",
    "fleet-clients": """Companion fairness view: per-client completed ops for the same run.
Closed-loop clients over a zipf-skewed fleet still all make progress;
the min/p50/p99 spread quantifies how much the popular arrays' queues
slow the clients that visit them.""",
    "tenants": """Extension experiment: multi-tenant QoS isolation
(`bizabench -exp tenants`, sharded like the fleet — byte-identical at
any `-shards`). Each array's block front end is multiplexed into named
tenant volumes (`internal/volume`): a latency-sensitive interactive
class (weight 16), a rate-limited batch class (weight 4 plus a token
bucket), and one saturating aggressor per array issuing deep 128 KiB
sequential writes. Three points share the workload: `baseline` idles
the aggressors, `qos` runs them under weighted-fair queueing with a
bounded dispatch window, `noqos` disables admission control. With QoS
the aggressor still gets throughput but the interactive class keeps
near-baseline tails and batch tenants hit their token bucket (nonzero
stalls); without it every class queues behind the aggressor backlog.
The jain column is Jain's fairness index over per-tenant completed ops
within the class (1.0 = perfectly even).""",
    "tenants-isolation": """The distilled isolation claim: each point's interactive p99 normalized
to the idle baseline. QoS holds the noisy-neighbor degradation under
the 2x acceptance bound pinned by `TestTenantsIsolation`; disabling it
lets the same workload blow past the bound — the gap between the two
rows is what the volume layer's WFQ + bounded window buys.""",
    "avail": """Extension experiment: availability across a member failure. A
byte-verified closed-loop workload runs while a deterministic fault plan
kills one member mid-run; the array detects the death from completion
errors, serves every read via parity reconstruction, hot-swaps a spare,
and rebuilds. Throughput collapses during the fault window (detection +
log-structured rebuild monopolize the survivors) and returns to within
~1% of the healthy rate after the rebuild; p99 latency spikes ~70x while
degraded. Every read in all three phases byte-verifies — the run panics
on any lost or torn acknowledged write.""",
}

ORDER = ["table2", "table3", "table6", "fig4", "fig5", "fig10a", "fig10b",
         "fig11a", "fig11b", "fig12", "fig13a", "fig13b", "fig14", "fig15",
         "fig16", "fig17", "detect", "batching", "wear", "append", "avail",
         "fleet", "fleet-clients", "tenants", "tenants-isolation", "future"]

HEADER = """# EXPERIMENTS — paper versus measured

Every table and figure of BIZA's evaluation (SOSP '24, §5), regenerated on
the simulated substrate at the default scale
(`bizabench -exp all`, 50 ms virtual windows, 60k-op traces; fully
deterministic). Absolute numbers come from the queueing model calibrated in
DESIGN.md — the reproduction target is each artifact's *shape*: who wins,
by roughly what factor, and where the crossovers fall. Regenerate any
entry with `go run ./cmd/bizabench -exp <id>`; a fast smoke pass of the
same artifacts runs via `go test -bench=. .`.

Headline claims reproduced: BIZA reduces flash write counts below both
adapter baselines on reuse-friendly traces while staying within the
analytic [ideal, nocache] bounds (§5.4); delivers ~2.9x the write
throughput of dmzap+RAIZN (§5.2, paper 2.7x average); and cuts GC-period
p99.99 tails versus the no-avoidance ablation, most strongly in the
latency-sensitive depth-1 scenario (§5.5).
"""


FOOTER = """## Observability walkthrough: where does Fig. 10's time go?

Any experiment can be re-run with the tracer on and its contention
structure inspected without touching Perfetto's UI. For Fig. 10:

```bash
go run ./cmd/bizabench -exp fig10 -quick -trace fig10.json
go run ./cmd/bizatrace explain -top 4 fig10.json
```

`explain` aggregates each traced platform (one per grid cell): service
tracks ranked by busy time, I/O span latency per layer, zone/ZRWA/GC
event counts, and final probe values. The BIZA seq-4K cell opens with:

```
=== fig10/BIZA/0/BIZA (virtual span 4.056 ms) ===
  top contention sources (busy time):
    dev1 zns                     12.295 ms busy  (303.1% of span, 2484 slices)
    dev0 zns                     12.287 ms busy  (302.9% of span, 2482 slices)
    dev2 zns                     12.287 ms busy  (302.9% of span, 2482 slices)
    dev3 zns                     12.287 ms busy  (302.9% of span, 2482 slices)
  I/O spans:
    biza write               n=2999     mean latency     43.019 us
    nvme write               n=4965     mean latency     22.997 us
  zone/GC events:
    zone-state               32
    zrwa-commit/implicit     1843
  probes (final, nonzero):
    chan_write_busy_ns/dev0/ch1      915020
    chan_write_busy_ns/dev1/ch0      915018
```

Reading it against the paper: the four member devices are uniformly busy
(~3x the virtual span each — transfer, bus, and die phases overlap, so
busy time exceeds wall time on a parallel device), which is §4.2's
channel-aware striping doing its job; every ZRWA flush is an *implicit*
commit (1843 of them, zero explicit) because BIZA lets the rolling window
retire writes, §4.4; and the per-channel write-busy probes agree to
within ~0.001%, confirming no channel is a straggler. The same command on
the `dmzap+RAIZN` cells shows the serialization the paper blames instead:
`dev0 ch0` alone is ~94% busy (5x its siblings — the RAIZN metadata
journal pinned to one channel) while BIZA's channels stay balanced. At
full scale drop `-quick`; `-trace-sample 16` keeps the artifact small on
long runs (typed events are never sampled away).
"""


def main(path):
    text = open(path).read()
    blocks = {}
    for m in re.finditer(r"^== (\S+): .*?==\n(.*?)(?=\n^== |\nEXIT|\Z)",
                         text, re.S | re.M):
        blocks[m.group(1)] = m.group(0).rstrip()
    out = [HEADER]
    for key in ORDER:
        if key not in blocks and key not in COMMENTARY:
            continue
        out.append(f"## {key}\n")
        if key in COMMENTARY:
            out.append(COMMENTARY[key] + "\n")
        if key in blocks:
            out.append("```\n" + blocks[key] + "\n```\n")
        else:
            out.append("_(regenerate with `bizabench -exp %s`)_\n" % key)
    out.append(FOOTER)
    print("\n".join(out))


if __name__ == "__main__":
    main(sys.argv[1])
