//go:build ignore

// Command check_metrics gates CI on the ops endpoint's output:
//
//	go run scripts/check_metrics.go -prom metrics.txt
//	go run scripts/check_metrics.go -series a.json -series b.json
//
// -prom validates a saved /metrics body against the Prometheus text
// exposition format (version 0.0.4): every non-comment line must be a
// well-formed sample, every family must carry a # TYPE declaration before
// its first sample, and the required biza_* families must be present.
//
// -series (repeatable) parses saved /series bodies; every series must be
// well-formed (named, positive cadence, finite points), and when two or
// more dumps are given they must be identical — the endpoint republishes
// simulation-derived data, so runs differing only in execution layout
// must serve byte-equal series.
package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"reflect"
	"regexp"
	"strings"

	"biza/internal/metrics"
)

type seriesList []string

func (s *seriesList) String() string     { return strings.Join(*s, ",") }
func (s *seriesList) Set(v string) error { *s = append(*s, v); return nil }

var sampleLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{([a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*",?)*\})? ` +
		`(NaN|[-+]?Inf|[-+]?[0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?)( [0-9]+)?$`)

func main() {
	var promPath string
	var seriesPaths seriesList
	args := os.Args[1:]
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "-prom":
			i++
			if i == len(args) {
				fail("-prom needs a file argument")
			}
			promPath = args[i]
		case "-series":
			i++
			if i == len(args) {
				fail("-series needs a file argument")
			}
			seriesPaths.Set(args[i])
		default:
			fail("usage: check_metrics [-prom metrics.txt] [-series dump.json ...]")
		}
	}
	if promPath == "" && len(seriesPaths) == 0 {
		fail("usage: check_metrics [-prom metrics.txt] [-series dump.json ...]")
	}
	if promPath != "" {
		checkProm(promPath)
	}
	if len(seriesPaths) > 0 {
		checkSeries(seriesPaths)
	}
}

func checkProm(path string) {
	buf, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}
	typed := map[string]bool{}
	samples := 0
	for n, line := range strings.Split(strings.TrimSuffix(string(buf), "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# TYPE "):
			f := strings.Fields(line)
			if len(f) != 4 {
				fail("%s:%d: malformed TYPE line %q", path, n+1, line)
			}
			switch f[3] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				fail("%s:%d: unknown metric type %q", path, n+1, f[3])
			}
			typed[f[2]] = true
		case strings.HasPrefix(line, "# HELP "), strings.HasPrefix(line, "#"):
		case line == "":
			fail("%s:%d: blank line in exposition body", path, n+1)
		default:
			if !sampleLine.MatchString(line) {
				fail("%s:%d: malformed sample line %q", path, n+1, line)
			}
			name := line[:strings.IndexAny(line, "{ ")]
			if !typed[name] {
				fail("%s:%d: sample %q has no preceding # TYPE", path, n+1, name)
			}
			samples++
		}
	}
	for _, family := range []string{"biza_sweep_done", "biza_points_done", "biza_virtual_seconds_total"} {
		if !typed[family] {
			fail("%s: required family %s missing", path, family)
		}
	}
	if samples == 0 {
		fail("%s: no sample lines", path)
	}
	fmt.Printf("prom ok: %s, %d families, %d samples\n", path, len(typed), samples)
}

func checkSeries(paths []string) {
	var ref []metrics.SeriesDump
	points := 0
	for i, path := range paths {
		buf, err := os.ReadFile(path)
		if err != nil {
			fail("%v", err)
		}
		var dump []metrics.SeriesDump
		if err := json.Unmarshal(buf, &dump); err != nil {
			fail("%s: malformed JSON: %v", path, err)
		}
		if len(dump) == 0 {
			fail("%s: no series in dump", path)
		}
		for _, sd := range dump {
			if sd.Name == "" || sd.IntervalNs <= 0 {
				fail("%s: malformed series %+v", path, sd)
			}
			for _, p := range sd.Points {
				if math.IsNaN(p) || math.IsInf(p, 0) {
					fail("%s: series %s/%s has a non-finite point", path, sd.Trace, sd.Name)
				}
			}
			if i == 0 {
				points += len(sd.Points)
			}
		}
		if i == 0 {
			ref = dump
			continue
		}
		if len(dump) != len(ref) {
			fail("%s: %d series, %s has %d", path, len(dump), paths[0], len(ref))
		}
		for j := range ref {
			if !reflect.DeepEqual(ref[j], dump[j]) {
				fail("%s: series %d (%s/%s) differs from %s",
					path, j, dump[j].Trace, dump[j].Name, paths[0])
			}
		}
	}
	fmt.Printf("series ok: %d dump(s), %d series, %d points identical\n",
		len(paths), len(ref), points)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "check_metrics: "+format+"\n", args...)
	os.Exit(1)
}
