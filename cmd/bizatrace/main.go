// Command bizatrace synthesizes the paper's trace workloads, prints their
// Table 6 characteristics and reuse-distance CDF (Fig. 4's metric), and
// optionally replays them against a platform:
//
//	bizatrace -workload casa -ops 50000
//	bizatrace -workload tencent -replay BIZA
//	bizatrace -list
//
// The explain subcommand summarizes an observability trace captured with
// bizabench -trace (Perfetto JSON or JSONL), ranking the simulated
// contention sources by busy time:
//
//	bizatrace explain fig10.json
//	bizatrace explain -top 20 fig10.jsonl
//
// The attr subcommand decomposes every completed span in such a trace
// into per-stage latency attribution (qos-stall, queue, xfer, bus, die,
// buffer, unattributed) whose stage means sum exactly to the end-to-end
// mean:
//
//	bizatrace attr fig10.jsonl
package main

import (
	"flag"
	"fmt"
	"os"

	"biza/internal/obs"
	"biza/internal/stack"
	"biza/internal/trace"
	"biza/internal/workload"
)

// explainMain implements "bizatrace explain [-top N] <trace file>".
func explainMain(args []string) {
	fs := flag.NewFlagSet("bizatrace explain", flag.ExitOnError)
	top := fs.Int("top", 10, "contention sources to list")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: bizatrace explain [-top N] <trace.json|trace.jsonl>")
		os.Exit(2)
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	if err := obs.Explain(f, os.Stdout, *top); err != nil {
		fmt.Fprintf(os.Stderr, "bizatrace explain: %v\n", err)
		os.Exit(1)
	}
}

// attrMain implements "bizatrace attr <trace file>".
func attrMain(args []string) {
	fs := flag.NewFlagSet("bizatrace attr", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: bizatrace attr <trace.json|trace.jsonl>")
		os.Exit(2)
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	if err := obs.Attr(f, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "bizatrace attr: %v\n", err)
		os.Exit(1)
	}
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "explain" {
		explainMain(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "attr" {
		attrMain(os.Args[2:])
		return
	}
	name := flag.String("workload", "casa", "workload profile (see -list)")
	ops := flag.Int("ops", 50000, "operations to synthesize")
	seed := flag.Uint64("seed", 11, "random seed")
	replay := flag.String("replay", "", "platform to replay against (empty = analyze only)")
	depth := flag.Int("depth", 32, "replay I/O depth")
	list := flag.Bool("list", false, "list workload profiles")
	save := flag.String("save", "", "write the synthesized trace to a file")
	load := flag.String("load", "", "analyze/replay a saved trace instead of synthesizing")
	flag.Parse()

	if *list {
		for _, p := range workload.Profiles {
			fmt.Printf("%-8s write%%=%.1f footprint=%dMB hot=%dMB hotWrites=%.0f%%\n",
				p.Name, p.WriteRatio*100, p.FootprintMB, p.HotMB, p.HotWriteFrac*100)
		}
		return
	}
	var tr *trace.Trace
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		tr, err = trace.ReadFrom(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		prof := workload.ProfileByName(*name)
		if prof == nil {
			fmt.Fprintf(os.Stderr, "unknown workload %q (try -list)\n", *name)
			os.Exit(1)
		}
		tr = prof.Synthesize(*seed, *ops)
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if _, err := tr.WriteTo(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("saved %d ops to %s\n", len(tr.Ops), *save)
	}
	st := tr.Characterize()
	fmt.Printf("workload %s: %d ops, write ratio %.1f%%, avg read %.1f KB, avg write %.1f KB\n",
		tr.Name, st.Ops, st.WriteRatio*100, st.AvgReadBytes/1024, st.AvgWriteBytes/1024)
	thresholds := []int64{1 << 20, 14 << 20, 56 << 20, 256 << 20, 1 << 30}
	labels := []string{"1MB", "14MB", "56MB", "256MB", "1GB"}
	cdf := tr.ReuseCDF(thresholds)
	fmt.Println("reuse-distance CDF:")
	for i, v := range cdf {
		fmt.Printf("  <= %-6s %.3f\n", labels[i], v)
	}
	if *replay == "" {
		return
	}
	p, err := stack.New(stack.Kind(*replay), stack.Options{Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	res := trace.Replay(p.Eng, p.Dev, tr, *depth)
	fmt.Printf("replay on %s: %s, %d errors\n", *replay, res.Throughput(), res.Errors)
	fmt.Printf("  write p50=%.1fus p99.99=%.1fus | read p50=%.1fus p99.99=%.1fus\n",
		float64(res.WriteLat.Percentile(50))/1000, float64(res.WriteLat.Percentile(99.99))/1000,
		float64(res.ReadLat.Percentile(50))/1000, float64(res.ReadLat.Percentile(99.99))/1000)
	wa := p.FlashWriteAmp()
	fmt.Printf("  write amp: %.3f (data %.3f + parity %.3f)\n", wa.Factor(), wa.DataFactor(), wa.ParityFactor())
}
