// Command bizabench regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	bizabench -exp fig10                     # one experiment
//	bizabench -exp fig10,fig11               # a subset
//	bizabench -exp all                       # everything (the EXPERIMENTS.md run)
//	bizabench -exp fig14 -quick              # reduced scale for a fast look
//	bizabench -exp all -quick -parallel 8    # sharded across 8 workers
//	bizabench -exp all -json out.json        # machine-readable results
//	bizabench -exp fig10 -trace fig10.json   # Perfetto trace of every platform
//	bizabench -exp fleet -shards 8           # sharded fleet across 8 engine shards
//	bizabench -exp tenants -shards 4         # multi-tenant QoS isolation, sharded
//	bizabench -exp fig10 -series -json out.json   # virtual-time series in the report
//	bizabench -exp all -quick -serve :9178   # live ops endpoint during the sweep
//
// Results are bit-identical for a given -seed regardless of -parallel
// or -shards:
// every experiment point derives its RNG streams from (seed, experiment,
// stream label), never from scheduling order. A panicking experiment is
// reported and skipped; the process then exits non-zero after the rest of
// the sweep completes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"

	"biza/internal/bench"
	"biza/internal/metrics"
	"biza/internal/obs"
	"biza/internal/ops"
)

func main() { os.Exit(run()) }

func run() int {
	exp := flag.String("exp", "all", "experiment id(s), comma-separated (see -list), or 'all'")
	quick := flag.Bool("quick", false, "reduced scale (seconds instead of minutes)")
	list := flag.Bool("list", false, "list experiment ids")
	md := flag.Bool("md", false, "emit GitHub-flavored markdown tables")
	parallel := flag.Int("parallel", runtime.NumCPU(), "worker count for independent experiment points")
	shards := flag.Int("shards", runtime.NumCPU(), "engine shards per point for sharded experiments (fleet, tenants); output is identical at any value")
	seed := flag.Uint64("seed", bench.DefaultSeed, "base seed for all derived RNG streams")
	jsonPath := flag.String("json", "", "write machine-readable results ("+bench.ReportSchema+" schema) to this file")
	series := flag.Bool("series", false, "sample virtual-time series into the report's \"series\" section (deterministic at any -parallel/-shards)")
	serve := flag.String("serve", "", "serve the live ops endpoint (/metrics /vars /series /stream /debug/pprof) on this address; blocks after the sweep until SIGINT/SIGTERM")
	live := flag.Bool("live", false, "with -serve: skip the sweep and serve one long-lived array whose admin jobs are driven over POST /v1/jobs until SIGINT/SIGTERM")
	stats := flag.Bool("stats", true, "print per-experiment wall/virtual-time accounting to stderr")
	tracePath := flag.String("trace", "", "write a Perfetto trace_event JSON trace to this file")
	traceJSONL := flag.String("trace-jsonl", "", "write a compact JSONL trace to this file")
	traceSample := flag.Int("trace-sample", 1, "trace every Nth I/O span (1 = all; events always kept)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the sweep to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile (post-sweep) to this file")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(bench.IDs(), "\n"))
		return 0
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bizabench: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "bizabench: starting CPU profile: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		path := *memProfile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bizabench: %v\n", err)
				return
			}
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "bizabench: writing heap profile: %v\n", err)
			}
			f.Close()
		}()
	}

	scale := bench.DefaultScale()
	if *quick {
		scale = bench.QuickScale()
	}
	ids := bench.IDs()
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
		for _, id := range ids {
			if _, ok := bench.Experiments[id]; !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; known: %s\n", id, strings.Join(bench.IDs(), " "))
				return 1
			}
		}
	}

	runner := &bench.Runner{Scale: scale, Seed: *seed, Parallel: *parallel, Shards: *shards, Quick: *quick}
	if *tracePath != "" || *traceJSONL != "" {
		runner.Trace = &obs.Config{SampleN: *traceSample}
	}
	if *series || *serve != "" {
		runner.Series = &metrics.SamplerConfig{} // defaults: 50µs cadence, 512 points
	}
	if *live && *serve == "" {
		fmt.Fprintln(os.Stderr, "bizabench: -live requires -serve")
		return 1
	}
	var opsSrv *ops.Server
	if *serve != "" {
		opsSrv = ops.New()
		addr, err := opsSrv.Start(*serve)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bizabench: ops endpoint: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "# ops endpoint on http://%s (/metrics /vars /series /stream /debug/pprof)\n", addr)
		if !*live {
			opsSrv.Attach(runner)
		}
		defer opsSrv.Close()
	}
	if *live {
		return runLive(opsSrv, *seed)
	}
	rep := runner.Run(ids)
	if opsSrv != nil {
		opsSrv.Finish(rep)
	}

	writeTrace := func(path string, write func(w *os.File, trs []*obs.Trace) error) bool {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bizabench: %v\n", err)
			return false
		}
		if err := write(f, rep.Traces); err == nil {
			err = f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "bizabench: writing %s: %v\n", path, err)
			return false
		}
		return true
	}
	if *tracePath != "" {
		if !writeTrace(*tracePath, func(w *os.File, trs []*obs.Trace) error {
			return obs.WritePerfetto(w, trs)
		}) {
			return 1
		}
	}
	if *traceJSONL != "" {
		if !writeTrace(*traceJSONL, func(w *os.File, trs []*obs.Trace) error {
			return obs.WriteJSONL(w, trs)
		}) {
			return 1
		}
	}

	render := func(t *bench.Table) string {
		if *md {
			return t.Markdown()
		}
		return t.String()
	}
	for i := range rep.Results {
		res := &rep.Results[i]
		if res.Error != "" {
			fmt.Fprintf(os.Stderr, "bizabench: experiment %s FAILED: %s\n", res.Experiment, res.Error)
			continue
		}
		for _, t := range res.Tables {
			fmt.Println(render(t))
		}
	}

	if *stats {
		for i := range rep.Results {
			res := &rep.Results[i]
			fmt.Fprintf(os.Stderr, "# %-8s %s\n", res.Experiment, res.Stats)
		}
		total := rep.Stats()
		fmt.Fprintf(os.Stderr, "# total    %s (elapsed %.1fms at -parallel %d)\n",
			total, float64(rep.WallNanos)/1e6, rep.Parallel)
	}

	if *jsonPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "bizabench: encoding results: %v\n", err)
			return 1
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonPath, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "bizabench: writing %s: %v\n", *jsonPath, err)
			return 1
		}
	}

	if opsSrv != nil {
		fmt.Fprintln(os.Stderr, "# sweep complete; ops endpoint serving until SIGINT/SIGTERM")
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
	}

	if failed := rep.Failed(); len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "bizabench: %d experiment(s) failed: %s\n",
			len(failed), strings.Join(failed, " "))
		return 1
	}
	return 0
}
