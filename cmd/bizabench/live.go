package main

import (
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"biza"
	"biza/internal/blockdev"
	"biza/internal/metrics"
	"biza/internal/ops"
)

// Live-mode sizing. Each real tick advances the simulation by a fixed
// virtual slice and republishes a snapshot, so the ops endpoint shows a
// long-lived array mutating in (scaled) real time.
const (
	liveSlice    = 2 * time.Millisecond  // virtual time per tick
	liveTick     = 50 * time.Millisecond // real time per tick
	liveSpan     = 4096                  // working-set blocks (16 MiB)
	liveOpBlocks = 64                    // blocks per foreground write
	liveTickOps  = 4                     // foreground writes issued per tick
)

// runLive serves one long-lived BIZA array behind the ops endpoint
// instead of running a sweep: admin jobs submitted over POST /v1/jobs are
// drained into the simulation at tick boundaries, a light foreground
// write workload keeps stripes open so rebuilds have substance, and every
// tick republishes virtual time, probes, and the job list. The loop is
// the canonical deterministic injection boundary: HTTP staging happens in
// wall time, but commands enter the simulation only between ticks, so a
// given (seed, command sequence) replays bit-identically.
func runLive(opsSrv *ops.Server, seed uint64) int {
	arr, err := biza.New(biza.Options{Seed: seed})
	if err != nil {
		fmt.Fprintf(os.Stderr, "bizabench: live array: %v\n", err)
		return 1
	}
	adm := arr.Admin()
	adm.SetJobs(opsSrv)
	gw := adm.Gateway()

	// Prefill the working set so replace/scrub jobs see real stripes.
	buf := make([]byte, liveOpBlocks*arr.BlockSize())
	for lba := int64(0); lba < liveSpan; lba += liveOpBlocks {
		if err := arr.WriteSync(lba, liveOpBlocks, buf); err != nil {
			fmt.Fprintf(os.Stderr, "bizabench: live prefill: %v\n", err)
			return 1
		}
	}

	var next, writes, writeErrs int64
	publish := func() {
		opsSrv.Publish(ops.Snapshot{
			Live:         true,
			Experiment:   "live",
			VirtualNanos: arr.Now(),
			Jobs:         gw.JobsJSON(),
			Probes: []metrics.ProbeStat{
				{Name: "live/foreground_writes", Kind: metrics.ProbeCounter, Value: float64(writes)},
				{Name: "live/write_errors", Kind: metrics.ProbeCounter, Value: float64(writeErrs)},
				{Name: "live/absorbed_bytes", Kind: metrics.ProbeCounter, Value: float64(arr.AbsorbedBytes())},
				{Name: "live/gc_events", Kind: metrics.ProbeCounter, Value: float64(arr.GCEvents())},
				{Name: "live/reconstructions", Kind: metrics.ProbeCounter, Value: float64(arr.Reconstructions())},
			},
		})
	}
	publish()
	fmt.Fprintf(os.Stderr, "# live array ready (seed %d); POST /v1/jobs to mutate; SIGINT/SIGTERM to stop\n", seed)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	for {
		select {
		case <-sig:
			return 0
		default:
		}
		// Inject staged HTTP commands at the tick boundary, then advance.
		gw.Drain()
		for i := 0; i < liveTickOps; i++ {
			lba := next
			next = (next + liveOpBlocks) % liveSpan
			writes++
			arr.Device().Write(lba, liveOpBlocks, nil, func(res blockdev.WriteResult) {
				if res.Err != nil {
					writeErrs++
				}
			})
		}
		arr.RunFor(int64(liveSlice))
		publish()
		time.Sleep(liveTick)
	}
}
