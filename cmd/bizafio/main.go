// Command bizafio is an fio-like microbenchmark driver for any platform:
//
//	bizafio -platform BIZA -rw write -pattern seq -size 64K -depth 32 -ms 50
//	bizafio -platform mdraid+dmzap -rw read -pattern rand -size 4K
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"biza/internal/sim"
	"biza/internal/stack"
	"biza/internal/workload"
)

func parseSize(s string) (int, error) {
	s = strings.ToUpper(strings.TrimSpace(s))
	mult := 1
	switch {
	case strings.HasSuffix(s, "K"):
		mult, s = 1024, strings.TrimSuffix(s, "K")
	case strings.HasSuffix(s, "M"):
		mult, s = 1<<20, strings.TrimSuffix(s, "M")
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, err
	}
	bytes := n * mult
	if bytes%4096 != 0 || bytes == 0 {
		return 0, fmt.Errorf("size %q not a positive multiple of 4K", s)
	}
	return bytes / 4096, nil
}

func main() {
	platform := flag.String("platform", "BIZA", "platform kind (BIZA, BIZAw/oSelector, BIZAw/oAvoid, RAIZN, dmzap+RAIZN, mdraid+dmzap, mdraid+ConvSSD)")
	rw := flag.String("rw", "write", "write or read")
	pattern := flag.String("pattern", "seq", "seq or rand")
	size := flag.String("size", "64K", "request size (multiple of 4K)")
	depth := flag.Int("depth", 32, "I/O depth")
	ms := flag.Int("ms", 50, "measurement window in virtual milliseconds")
	seed := flag.Uint64("seed", 42, "random seed")
	flag.Parse()

	blocks, err := parseSize(*size)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	p, err := stack.New(stack.Kind(*platform), stack.Options{Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	spec := workload.MicroSpec{
		SizeBlocks: blocks,
		IODepth:    *depth,
		Duration:   sim.Time(*ms) * sim.Millisecond,
		Seed:       *seed,
	}
	if *pattern == "rand" {
		spec.Pattern = workload.Rand
	}
	if *rw == "read" {
		spec.Read = true
		span := p.Dev.Blocks() / 2
		spec.SpanBlocks = span
		workload.Precondition(p.Eng, p.Dev, span, 16)
	}
	res := workload.RunMicro(p.Eng, p.Dev, spec)
	s := res.Lat.Summarize()
	fmt.Printf("%s %s %s size=%s depth=%d\n", *platform, *rw, *pattern, *size, *depth)
	fmt.Printf("  throughput: %s   iops: %.0f\n", res.Throughput(), float64(res.Ops)/(float64(res.Elapsed)/1e9))
	fmt.Printf("  latency: avg=%.1fus p50=%.1fus p99=%.1fus p99.99=%.1fus\n",
		s.Mean/1000, float64(s.P50)/1000, float64(s.P99)/1000, float64(s.P9999)/1000)
	if res.Errors > 0 {
		fmt.Printf("  errors: %d\n", res.Errors)
	}
	wa := p.FlashWriteAmp()
	if wa.UserBytes > 0 {
		fmt.Printf("  write amp: %.3f (data %.3f + parity %.3f)\n", wa.Factor(), wa.DataFactor(), wa.ParityFactor())
	}
}
