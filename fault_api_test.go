package biza

// Public fault/recovery API coverage: crash-at-every-point sweeps, the
// declarative fault spec (power cuts, member death with auto-replace), and
// bit-identical reproduction of faulty runs from a seed.

import (
	"bytes"
	"errors"
	"testing"

	"biza/internal/blockdev"
)

func fpat(seed byte, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed ^ byte(i*13)
	}
	return b
}

func TestCrashRejectsIOUntilRecovered(t *testing.T) {
	a, err := New(Options{StoreData: true, Seed: 40})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.WriteSync(0, 4, fpat(1, 4*4096)); err != nil {
		t.Fatal(err)
	}
	if err := a.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := a.WriteSync(8, 1, nil); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write while crashed: %v", err)
	}
	if _, err := a.ReadSync(0, 1); !errors.Is(err, ErrCrashed) {
		t.Fatalf("read while crashed: %v", err)
	}
	if err := a.Crash(); err == nil {
		t.Fatal("double crash accepted")
	}
	if err := a.Recover(); err != nil {
		t.Fatal(err)
	}
	got, err := a.ReadSync(0, 4)
	if err != nil || !bytes.Equal(got, fpat(1, 4*4096)) {
		t.Fatalf("post-recovery read: %v", err)
	}
	if err := a.WriteSync(8, 1, fpat(2, 4096)); err != nil {
		t.Fatalf("post-recovery write: %v", err)
	}
}

func TestCrashRecoverRequiresBIZA(t *testing.T) {
	a, err := New(Options{Kind: RAIZN, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Crash(); err == nil {
		t.Fatal("RAIZN accepted Crash")
	}
	if err := a.Recover(); err == nil {
		t.Fatal("RAIZN accepted Recover")
	}
	// A power-cut schedule needs the recovery path, so non-BIZA kinds
	// must reject it at construction.
	_, err = New(Options{Kind: RAIZN, Seed: 1,
		Faults: &FaultSpec{Rules: []FaultRule{PowerCut(1000)}}})
	if err == nil {
		t.Fatal("RAIZN accepted a power-loss fault spec")
	}
}

func TestPowerLossSweepRestoresAckedData(t *testing.T) {
	// Cut power at a sweep of points across a write burst; after recovery
	// every acknowledged write must read back byte-identical. This is the
	// one-directional durability contract: acked data survives, unacked
	// data may or may not.
	const writes = 30
	// Profile the burst to learn its duration, then sweep cut points.
	profile, err := New(Options{StoreData: true, Seed: 50})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < writes; i++ {
		if err := profile.WriteSync(int64(i*3), 1, fpat(byte(i+1), 4096)); err != nil {
			t.Fatal(err)
		}
	}
	total := profile.Now()
	if total <= 0 {
		t.Fatal("profiling run advanced no time")
	}

	const points = 10
	for p := 0; p <= points; p++ {
		cut := total * int64(p) / points
		a, err := New(Options{StoreData: true, Seed: 50})
		if err != nil {
			t.Fatal(err)
		}
		acked := map[int64][]byte{}
		for i := 0; i < writes; i++ {
			lba := int64(i * 3)
			data := fpat(byte(i+1), 4096)
			a.Device().Write(lba, 1, data, func(r blockdev.WriteResult) {
				if r.Err == nil {
					acked[lba] = data
				}
			})
		}
		a.RunFor(cut + 1)
		if err := a.Crash(); err != nil {
			t.Fatalf("cut %d: %v", p, err)
		}
		if err := a.Recover(); err != nil {
			t.Fatalf("cut %d recover: %v", p, err)
		}
		for lba, want := range acked {
			got, err := a.ReadSync(lba, 1)
			if err != nil {
				t.Fatalf("cut %d lba %d: %v", p, lba, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("cut %d: acked lba %d lost or torn", p, lba)
			}
		}
		// The recovered array keeps working.
		if err := a.WriteSync(500, 1, fpat(0xEE, 4096)); err != nil {
			t.Fatalf("cut %d post-recovery write: %v", p, err)
		}
	}
}

func TestFaultSpecPowerCutAutoRecovers(t *testing.T) {
	// A PowerLoss rule crashes and recovers the platform from inside the
	// simulation; acked data written before the cut survives it.
	cut := int64(1_000_000_000) // 1s of virtual time, long after the writes
	a, err := New(Options{StoreData: true, Seed: 51,
		Faults: &FaultSpec{Rules: []FaultRule{PowerCut(cut)}}})
	if err != nil {
		t.Fatal(err)
	}
	want := map[int64][]byte{}
	for i := 0; i < 24; i++ {
		lba := int64(i * 5)
		data := fpat(byte(i+7), 4096)
		a.Device().Write(lba, 1, data, func(r blockdev.WriteResult) {
			if r.Err == nil {
				want[lba] = data
			}
		})
	}
	// Drain the burst without crossing the scheduled cut (a full Run would
	// fast-forward straight through it).
	a.RunFor(cut - 1)
	if len(want) == 0 {
		t.Fatal("no write acked before the cut — test degenerate")
	}
	if a.Platform().Crashed() {
		t.Fatal("platform crashed before the scheduled cut")
	}
	a.Run() // cross the cut: crash, then the automatic recovery scan
	if a.Platform().Crashed() {
		t.Fatal("platform still crashed after scheduled recovery")
	}
	for lba, data := range want {
		got, err := a.ReadSync(lba, 1)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("lba %d after power cut: %v", lba, err)
		}
	}
}

func TestMemberDeathMidWorkloadAutoReplace(t *testing.T) {
	// The ISSUE's acceptance scenario: one member dies mid-workload; every
	// read is still served correctly (byte-compared), the hot-swap
	// completes, and full fault tolerance is restored.
	workload := func(a *Array, want map[int64][]byte, half bool) {
		n := 160
		if half {
			n = 80
		}
		for i := 0; i < n; i++ {
			lba := int64(i % 100)
			data := fpat(byte(i+1), 4096)
			if err := a.WriteSync(lba, 1, data); err != nil {
				t.Fatalf("write %d: %v", i, err)
			}
			if want != nil {
				want[lba] = data
			}
		}
	}
	// Profile the first half to place the kill mid-workload.
	profile, err := New(Options{StoreData: true, Seed: 52})
	if err != nil {
		t.Fatal(err)
	}
	workload(profile, nil, true)
	killAt := profile.Now()

	a, err := New(Options{StoreData: true, Seed: 52, AutoReplace: true,
		Faults: &FaultSpec{Rules: []FaultRule{KillDevice(2, killAt)}}})
	if err != nil {
		t.Fatal(err)
	}
	want := map[int64][]byte{}
	workload(a, want, false)
	a.Run()
	if a.Reconstructions() == 0 {
		t.Fatal("member death left no reconstruction trace — kill missed the workload")
	}
	for i, s := range a.Health() {
		if s != MemberHealthy {
			t.Fatalf("member %d = %v after auto-replace", i, s)
		}
	}
	for lba, data := range want {
		got, err := a.ReadSync(lba, 1)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("lba %d after death+rebuild: %v", lba, err)
		}
	}
	// Full tolerance restored: any single member may fail.
	for dev := 0; dev < 4; dev++ {
		if err := a.SetDeviceFailed(dev, true); err != nil {
			t.Fatal(err)
		}
		for lba, data := range want {
			got, err := a.ReadSync(lba, 1)
			if err != nil || !bytes.Equal(got, data) {
				t.Fatalf("dev %d down, lba %d: %v", dev, lba, err)
			}
		}
		a.SetDeviceFailed(dev, false)
	}
}

func TestFaultScheduleDeterministic(t *testing.T) {
	// Same seed, same spec: the faulty run reproduces bit-identically.
	run := func() (uint64, uint64, WriteAmp, []byte) {
		a, err := New(Options{StoreData: true, Seed: 53, AutoReplace: true,
			Faults: &FaultSpec{Rules: []FaultRule{
				TransientErrors(-1, FaultAnyOp, 0.01),
				KillDevice(1, 3_000_000),
			}}})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 150; i++ {
			if err := a.WriteSync(int64(i%64), 1, fpat(byte(i), 4096)); err != nil {
				t.Fatalf("write %d: %v", i, err)
			}
		}
		a.Run()
		sum := make([]byte, 0, 64*4096)
		for lba := int64(0); lba < 64; lba++ {
			got, err := a.ReadSync(lba, 1)
			if err != nil {
				t.Fatalf("read %d: %v", lba, err)
			}
			sum = append(sum, got...)
		}
		var faults uint64
		for _, q := range a.Platform().Queues() {
			faults += q.Injector().Injected()
		}
		return a.Reconstructions(), faults, a.WriteAmp(), sum
	}
	r1, f1, wa1, d1 := run()
	r2, f2, wa2, d2 := run()
	if r1 != r2 || f1 != f2 || wa1 != wa2 || !bytes.Equal(d1, d2) {
		t.Fatalf("faulty replay diverged: recon %d/%d faults %d/%d", r1, r2, f1, f2)
	}
	if f1 == 0 {
		t.Fatal("no faults injected — determinism check degenerate")
	}
}
