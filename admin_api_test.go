package biza_test

import (
	"errors"
	"testing"

	"biza"
	"biza/internal/storerr"
)

// TestAdminFacade drives every job kind through the public surface and
// checks the array's four mutating methods leave job records behind —
// they are documented thin wrappers over the control plane.
func TestAdminFacade(t *testing.T) {
	arr, err := biza.New(biza.Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if err := arr.WriteSync(int64(i), 1, nil); err != nil {
			t.Fatal(err)
		}
	}
	ad := arr.Admin()
	if err := ad.Scrub(4096, 0); err != nil {
		t.Fatalf("scrub: %v", err)
	}
	if err := ad.ReplaceDevicePaced(1, 4, 100_000); err != nil {
		t.Fatalf("paced replace: %v", err)
	}
	if err := arr.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := arr.Recover(); err != nil {
		t.Fatal(err)
	}
	if err := arr.SetDeviceFailed(0, true); err != nil {
		t.Fatal(err)
	}
	if err := arr.SetDeviceFailed(0, false); err != nil {
		t.Fatal(err)
	}
	if err := arr.ReplaceDevice(2); err != nil {
		t.Fatal(err)
	}

	if _, err := arr.OpenVolume("tenant", biza.VolumeOptions{Blocks: 1 << 10}); err != nil {
		t.Fatal(err)
	}
	if err := ad.ResizeVolume("tenant", 1<<11); err != nil {
		t.Fatalf("resize: %v", err)
	}
	if err := ad.DeleteVolume("tenant"); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if err := ad.DeleteVolume("ghost"); !errors.Is(err, storerr.ErrNotFound) {
		t.Fatalf("ghost delete: err = %v, want ErrNotFound", err)
	}

	jobs := ad.Jobs()
	// scrub, replace, crash, recover, 2×set-failed, replace, resize,
	// delete, failed delete = 10 records.
	if len(jobs) != 10 {
		t.Fatalf("job records = %d, want 10", len(jobs))
	}
	for i, j := range jobs[:9] {
		if j.State != biza.JobDone {
			t.Fatalf("job %d = %+v, want done", i, j)
		}
	}
	if last := jobs[9]; last.State != biza.JobFailed {
		t.Fatalf("ghost delete job = %+v, want failed", last)
	}
}

// TestAdminFacadeNonBIZA: job kinds that need a BIZA stack surface
// ErrNotSupported through the facade on baseline platforms.
func TestAdminFacadeNonBIZA(t *testing.T) {
	arr, err := biza.New(biza.Options{Kind: biza.RAIZN, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	ad := arr.Admin()
	if err := ad.Crash(); !errors.Is(err, storerr.ErrNotSupported) {
		t.Fatalf("crash: err = %v, want ErrNotSupported", err)
	}
	if err := ad.SetDeviceFailed(0, true); !errors.Is(err, storerr.ErrNotSupported) {
		t.Fatalf("set-failed: err = %v, want ErrNotSupported", err)
	}
	if err := ad.ReplaceDevice(0); !errors.Is(err, storerr.ErrNotSupported) {
		t.Fatalf("replace: err = %v, want ErrNotSupported", err)
	}
}
